// Distributed top-k: the k globally smallest elements, delivered sorted
// to one designated group rank.
//
// Two routes, benchmarked against each other in bench_query:
//
//  * kSelect -- DistributedSelect finds the k-th threshold, every rank
//    keeps its elements below it plus a deterministic rank-ordered share
//    of the ties (one exscan), and exactly k qualifying elements ship to
//    the root over the transport's *sparse* exchange -- most ranks of a
//    skewed query contribute few or no items, so only non-empty
//    contributions pay a message. Bytes on the wire: k elements plus the
//    selection rounds' O(p log n) scalars -- strictly less than any full
//    sort of the same input moves.
//  * kLocalHeap -- the classic small-k fallback (cf. the mempool_dphpc
//    heap/quickselect top-k baselines): every rank reduces its slice to
//    its local k smallest (quickselect, expected O(n/p)), ships those
//    candidates to the root in one sparse exchange, and the root merges.
//    One round instead of O(log n), but p*k candidate elements move.
//
//  * kAuto picks between them from globally shared quantities only:
//    the candidate volume p*k is compared against the selection route's
//    round overhead (see topk.cpp), so every rank picks the same route.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "query/common.hpp"

namespace jsort::query {

enum class TopKRoute { kSelect, kLocalHeap, kAuto };

const char* TopKRouteName(TopKRoute r);

struct TopKConfig {
  TopKRoute route = TopKRoute::kAuto;
  /// Selection pivot seed (kSelect route); mixed per rank.
  std::uint64_t seed = 0x707Bu;
  /// Group rank that receives the result.
  int root = 0;
  int tag = kTopKTagBase;
};

struct TopKStats {
  TopKRoute route_taken = TopKRoute::kSelect;
  int select_rounds = 0;            // 0 on the local-heap route
  std::int64_t candidates_sent = 0; // elements this rank shipped to root
};

/// Collective over the transport group. Returns, on group rank
/// `cfg.root`, the min(k, n_total) globally smallest elements sorted
/// ascending; every other rank returns an empty vector. k < 0 throws.
std::vector<double> DistributedTopK(Transport& tr,
                                    std::span<const double> local,
                                    std::int64_t k,
                                    const TopKConfig& cfg = {},
                                    TopKStats* stats = nullptr);

}  // namespace jsort::query
