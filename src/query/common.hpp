// Shared vocabulary of the query subsystem (jsort::query).
//
// Queries are the workload the paper's O(1) communicator splits pay off
// most for: small, latency-sensitive requests that want an *answer*
// (top-k, an order statistic, a percentile) rather than a globally
// sorted array. Every kernel here runs over the jsort::Transport
// abstraction, so the rbc / mpi / icomm split backends are one axis, and
// every kernel is deterministic in (data, config) alone -- backends
// produce bit-identical answers.
#pragma once

#include <thread>

#include "sort/transport.hpp"

namespace jsort::query {

/// Logical tags of the query collectives. Disjoint from the sorters'
/// working tags and the service's verification tags (7050/7051); within
/// one group the query kernels run their collectives strictly
/// sequentially, so one small block per kernel suffices.
inline constexpr int kSelectTagBase = 7100;
inline constexpr int kTopKTagBase = 7110;
inline constexpr int kQuantileTagBase = 7120;
inline constexpr int kQueryVerifyTagBase = 7130;

/// Drives a nonblocking operation to completion. Yields between polls --
/// the simulated ranks are threads, typically more of them than cores,
/// and a non-yielding spin starves whichever thread must make progress.
inline void Wait(const Poll& poll) {
  while (!poll()) std::this_thread::yield();
}

/// Blocking allreduce over a Transport, composed from the two collectives
/// every backend provides: Ireduce to group rank 0 on `tag`, then Ibcast
/// of the result on `tag + 1`. `in` and `out` must not alias.
inline void Allreduce(Transport& tr, const void* in, void* out, int count,
                      Datatype dt, ReduceOp op, int tag) {
  Wait(tr.Ireduce(in, out, count, dt, op, 0, tag));
  Wait(tr.Ibcast(out, count, dt, 0, tag + 1));
}

}  // namespace jsort::query
