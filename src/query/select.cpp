#include "query/select.hpp"

#include <algorithm>
#include <random>
#include <vector>

#include "mpisim/error.hpp"
#include "sort/sampling.hpp"

namespace jsort::query {

SelectResult DistributedSelect(Transport& tr, std::span<const double> local,
                               std::int64_t k, const SelectConfig& cfg,
                               SelectStats* stats) {
  const std::int64_t n_local = static_cast<std::int64_t>(local.size());
  std::int64_t n_total = 0;
  Allreduce(tr, &n_local, &n_total, 1, Datatype::kInt64, ReduceOp::kSum,
            cfg.tag);
  if (stats != nullptr) stats->n_total = n_total;
  if (k < 0 || k >= n_total) {
    throw mpisim::UsageError("DistributedSelect: k out of range");
  }

  // The local share of the global active window. Every discarded element
  // is strictly outside the answer's equal run, so `below` (the global
  // count of discarded-small elements) turns window-relative counts into
  // exact global ranks.
  std::vector<double> active(local.begin(), local.end());
  std::int64_t below = 0;
  std::mt19937_64 rng(cfg.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(tr.Rank()) + 1)));

  while (true) {
    if (stats != nullptr) ++stats->rounds;
    // Globally uniform pivot: weighted-reservoir candidates, max-key wins.
    const mpisim::PairDD cand = ReservoirCandidate(active, rng);
    mpisim::PairDD winner{};
    Allreduce(tr, &cand, &winner, 1, Datatype::kPairDoubleDouble,
              ReduceOp::kMaxPairFirst, cfg.tag);
    const double pivot = winner.second;

    // Local three-way partition, then one allreduce for the pivot's
    // global rank interval within the window.
    const auto less_end = std::partition(
        active.begin(), active.end(), [&](double x) { return x < pivot; });
    const auto equal_end = std::partition(
        less_end, active.end(), [&](double x) { return x == pivot; });
    const std::int64_t counts[2] = {
        static_cast<std::int64_t>(less_end - active.begin()),
        static_cast<std::int64_t>(equal_end - less_end),
    };
    std::int64_t global[2] = {0, 0};
    Allreduce(tr, counts, global, 2, Datatype::kInt64, ReduceOp::kSum,
              cfg.tag);

    if (k < below + global[0]) {
      active.erase(less_end, active.end());
    } else if (k < below + global[0] + global[1]) {
      // k falls inside the pivot's equal run: exact answer.
      return SelectResult{pivot, below + global[0],
                          below + global[0] + global[1]};
    } else {
      active.erase(active.begin(), equal_end);
      below += global[0] + global[1];
    }
    // The pivot is an actual element (its equal run has global count
    // >= 1), so the window shrinks every round: termination is
    // unconditional, O(log n) rounds in expectation.
  }
}

}  // namespace jsort::query
