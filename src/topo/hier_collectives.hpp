// Node-aware hierarchical collectives over RBC communicators.
//
// Built entirely from existing pieces (Section V-D's extension recipe):
// one elected leader per node -- the smallest group rank of each vnode
// run (hier_exchange.hpp) -- a leader-only inter-node phase over a
// binomial tree of the leader list, and intra-node redistribution via the
// flat rbc collectives on Split_RBC_Comm vnode sub-ranges (O(1), local).
// On a flat topology (or a single-node communicator) every operation
// degrades to its flat counterpart plus the leader election's O(size)
// local scan.
//
// Tag reservations (extending the map in rbc/collectives.hpp):
//   kTagHierBcast     = kReservedTagBase + 32
//   kTagHierAllreduce = kReservedTagBase + 33
//   kTagHierGatherv   = kReservedTagBase + 34
//   kTagHierAlltoallv = kReservedTagBase + 35
// Each blocking hierarchical collective owns one exclusive tag for its
// leader-phase point-to-point traffic; the intra phases run over vnode
// sub-communicators with the flat collectives' own exclusive tags (the
// sub-ranges overlap the parent in more than one process, but the
// hierarchical schedule never runs two collectives on overlapping
// ranges concurrently). HierAlltoallv's three sparse phases share
// kTagHierAlltoallv -- the sparse exchange's second barrier fences
// back-to-back operations on one tag -- and derive barrier/chunk tags
// from it exactly as documented in rbc/collectives.hpp.
//
// Sequence tracking (MPISIM_SANITIZE=1): each public entry records ONE
// logical collective (kHierBcast/kHierAllreduce/kHierGatherv/
// kHierAlltoallv) in the parent communicator's (comm, range) ledger; the
// intra-phase sub-collectives and the sparse phases are suppressed by
// the per-rank depth guard. Every record carries the elected leader list
// in counts_to, so two ranks disagreeing about the topology (a
// leader-rank divergence) raise a pairwise "different elected leader
// sets" mismatch instead of deadlocking in the leader phase.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rbc/rbc.hpp"
#include "topo/hier_exchange.hpp"

namespace topo {

inline constexpr int kTagHierBcast = rbc::kReservedTagBase + 32;
inline constexpr int kTagHierAllreduce = rbc::kReservedTagBase + 33;
inline constexpr int kTagHierGatherv = rbc::kReservedTagBase + 34;
inline constexpr int kTagHierAlltoallv = rbc::kReservedTagBase + 35;

/// Vnode map of an RBC communicator under the calling runtime's installed
/// topology: group ranks are translated to world ranks and grouped into
/// maximal same-node runs. Must be called from a rank thread.
VnodeMap VnodeMapOf(const rbc::Comm& comm);

/// Hierarchical broadcast: intra-node bcast inside the root's node, a
/// binomial tree over the node leaders, then intra-node bcasts. The
/// optional `vn` overrides the runtime-derived vnode map (tests and the
/// sanitizer's leader-divergence smoke inject disagreeing maps with it).
int HierBcast(void* buffer, int count, rbc::Datatype dt, int root,
              const rbc::Comm& comm, const VnodeMap* vn = nullptr);

/// Hierarchical allreduce (commutative ops): intra-node reduce to the
/// leader, reduce + bcast over the leader tree, intra-node bcast.
int HierAllreduce(const void* sendbuf, void* recvbuf, int count,
                  rbc::Datatype dt, rbc::ReduceOp op, const rbc::Comm& comm,
                  const VnodeMap* vn = nullptr);

/// Hierarchical gather with per-rank counts: the root's own node gathers
/// straight into recvbuf; every other node gathers to its leader, which
/// forwards one concatenated message to the root. recvcounts/displs
/// (elements, group-rank indexed) are significant at root only.
int HierGatherv(const void* sendbuf, int count, rbc::Datatype dt,
                void* recvbuf, std::span<const int> recvcounts,
                std::span<const int> displs, int root, const rbc::Comm& comm,
                const VnodeMap* vn = nullptr);

/// Hierarchical personalized all-to-all (dense counts interface, same
/// contract as rbc::Alltoallv): per-destination payloads are coalesced on
/// each node, cross the network once leader-to-leader (merged per
/// destination), and are scattered locally -- the three-phase engine of
/// hier_exchange.hpp over rbc::SparseAlltoallv. Delivers byte-identical
/// results to rbc::Alltoallv. segment_bytes > 0 chunks each sparse-phase
/// payload (the large-message regime).
int HierAlltoallv(const void* sendbuf, std::span<const int> sendcounts,
                  std::span<const int> sdispls, rbc::Datatype dt,
                  void* recvbuf, std::span<const int> recvcounts,
                  std::span<const int> rdispls, const rbc::Comm& comm,
                  std::int64_t segment_bytes = 0,
                  const VnodeMap* vn = nullptr,
                  HierLevelStats* stats = nullptr);

}  // namespace topo
