// Topology-shaped exchange: the generic three-phase byte engine behind
// the hierarchical Alltoallv (ISSUE: "intra-node coalescing of
// per-destination-node traffic, then local scatter").
//
// A flat sparse exchange ships one message per non-empty (source,
// destination) pair; with p ranks spread over m nodes, almost all of
// them cross the network. The hierarchical engine routes the same bytes
// in three phases so that every inter-node byte travels exactly once,
// between two node leaders:
//
//   A (intra): every rank sends each same-node destination its direct
//     payload, and ships all of its node-crossing pieces to the node
//     leader, bundled into the same message when the leader is also a
//     direct destination. Wire format to rank q:
//       [int64 direct_bytes][direct payload]
//       (iff q is the leader) [int32 nsections]
//                             [(int32 dest, int32 bytes) x nsections]
//                             [section payloads, dest-ascending]
//   B (inter, leaders only): each leader merges the buffered pieces PER
//     DESTINATION -- all same-node sources' payloads for one destination
//     concatenate (source-ascending) into ONE section -- and sends one
//     bundle per destination node to that node's leader:
//       [int32 nsections][(int32 dest, int32 bytes) x nsections]
//       [section payloads, dest-ascending]
//     Source ranks are never transmitted: node blocks are contiguous
//     rank runs, sparse deliveries arrive source-ordered, and each
//     merged section is internally source-ascending, so the receiver can
//     reconstruct the global source order from structure alone. The
//     per-destination merge is what makes the inter-node byte count
//     strictly smaller than the flat exchange's (headers shrink from one
//     per cross pair to one per (leader, destination) pair).
//   C (intra): each leader scatters to every local destination the
//     remote bytes that arrived for it:
//       [int64 bytes_from_lower_nodes][payload, source-node-ascending]
//
// Every rank finishes with exactly the bytes a flat exchange would have
// delivered, concatenated in source-rank-ascending order:
//   result = remote_lower ++ own-node direct block ++ remote_upper.
//
// The engine is parameterized on the sparse collective (SparseFn) so the
// same code serves rbc::SparseAlltoallv (topo::HierAlltoallv) and
// jsort::Transport::IsparseAlltoallv (exchange::Mode::kHierarchical)
// without a layering cycle. All three phases are collective: every rank
// of the group must invoke the SparseFn three times (with empty send
// lists where it has nothing to contribute); they may share one tag --
// the sparse exchange's second barrier fences back-to-back operations on
// the same tag.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "mpisim/error.hpp"
#include "mpisim/nbc.hpp"

namespace topo {

/// Virtual nodes of one communicator/group: maximal runs of group ranks
/// whose world ranks share a node. Ragged sizes, 1-rank nodes and the
/// degenerate single-node case all reduce to runs; a node id appearing in
/// two separate runs (non-contiguous placement) yields two independent
/// vnodes, which keeps every vnode a contiguous rank range -- the
/// property the engine's implicit source ordering relies on.
struct VnodeMap {
  std::vector<int> vnode_of;  // group rank -> vnode index
  std::vector<int> first;     // vnode -> first group rank
  std::vector<int> size;      // vnode -> member count

  int Count() const { return static_cast<int>(first.size()); }
  int LeaderOf(int v) const { return first[v]; }
  bool IsLeader(int r) const { return first[vnode_of[r]] == r; }

  /// Group ranks of all vnode leaders, ascending.
  std::vector<int> Leaders() const { return first; }
};

/// Builds the vnode map from per-group-rank node ids.
inline VnodeMap VnodesOf(std::span<const int> node_of_rank) {
  VnodeMap vn;
  vn.vnode_of.resize(node_of_rank.size());
  for (std::size_t r = 0; r < node_of_rank.size(); ++r) {
    if (r == 0 || node_of_rank[r] != node_of_rank[r - 1]) {
      vn.first.push_back(static_cast<int>(r));
      vn.size.push_back(0);
    }
    vn.vnode_of[r] = static_cast<int>(vn.first.size()) - 1;
    ++vn.size.back();
  }
  return vn;
}

/// One per-destination coalesced outgoing piece (raw bytes). Pieces must
/// be passed dest-ascending with at most one piece per destination; the
/// self-destined piece is legal and handled locally.
struct BytePiece {
  int dest = 0;
  const std::byte* data = nullptr;
  std::int64_t bytes = 0;
};

/// Payload traffic of one hierarchical exchange at this rank, split by
/// level (phases A+C are intra-node, phase B inter-node). Counts the
/// engine's logical messages; barrier/chunk metadata is the SparseFn's.
struct HierLevelStats {
  std::int64_t intra_messages = 0;
  std::int64_t intra_bytes = 0;
  std::int64_t inter_messages = 0;
  std::int64_t inter_bytes = 0;
};

namespace detail {

inline void PutI64(std::vector<std::byte>& b, std::int64_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof(v));
  std::memcpy(b.data() + at, &v, sizeof(v));
}

inline void PutI32(std::vector<std::byte>& b, std::int32_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof(v));
  std::memcpy(b.data() + at, &v, sizeof(v));
}

inline std::int64_t GetI64(const std::byte* p) {
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::int32_t GetI32(const std::byte* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void Append(std::vector<std::byte>& b, const std::byte* data,
                   std::int64_t bytes) {
  b.insert(b.end(), data, data + bytes);
}

/// Appends the (dest, bytes) section table and payloads of `sections`
/// (dest-ascending) to `msg`.
struct Section {
  int dest = 0;
  std::vector<std::byte> payload;
};

inline void PutSections(std::vector<std::byte>& msg,
                        std::span<const Section> sections) {
  PutI32(msg, static_cast<std::int32_t>(sections.size()));
  for (const Section& s : sections) {
    if (s.payload.size() >
        static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
      throw mpisim::UsageError(
          "hier exchange: per-destination section exceeds 2^31 bytes");
    }
    PutI32(msg, s.dest);
    PutI32(msg, static_cast<std::int32_t>(s.payload.size()));
  }
  for (const Section& s : sections) {
    Append(msg, s.payload.data(), static_cast<std::int64_t>(s.payload.size()));
  }
}

/// Parses a section table at `p` (with `avail` bytes); returns consumed
/// bytes.
inline std::size_t GetSections(const std::byte* p, std::size_t avail,
                               std::vector<Section>* out) {
  if (avail < 4) {
    throw mpisim::UsageError("hier exchange: truncated section header");
  }
  const std::int32_t n = GetI32(p);
  std::size_t off = 4;
  if (n < 0 || avail < off + static_cast<std::size_t>(n) * 8) {
    throw mpisim::UsageError("hier exchange: truncated section table");
  }
  std::vector<std::pair<int, std::int32_t>> table(
      static_cast<std::size_t>(n));
  for (auto& [dest, bytes] : table) {
    dest = GetI32(p + off);
    bytes = GetI32(p + off + 4);
    off += 8;
  }
  for (const auto& [dest, bytes] : table) {
    if (bytes < 0 || avail < off + static_cast<std::size_t>(bytes)) {
      throw mpisim::UsageError("hier exchange: truncated section payload");
    }
    Section s;
    s.dest = dest;
    s.payload.assign(p + off, p + off + bytes);
    off += static_cast<std::size_t>(bytes);
    out->push_back(std::move(s));
  }
  return off;
}

}  // namespace detail

/// Runs the three-phase hierarchical exchange. `pieces` is this rank's
/// per-destination coalesced traffic (dest-ascending, self allowed,
/// zero-byte pieces skipped); `sparse` is invoked exactly three times on
/// every rank (collectively) with signature
///   std::vector<mpisim::SparseRecvMessage>(
///       std::span<const mpisim::SparseSendBlock>)
/// over Datatype::kByte, returning deliveries ordered by source rank.
/// Returns the received bytes concatenated in source-rank-ascending
/// order -- byte-identical to a flat exchange of the same pieces.
template <typename SparseFn>
std::vector<std::byte> HierExchangeBytes(const VnodeMap& vn, int my_rank,
                                         std::span<const BytePiece> pieces,
                                         SparseFn&& sparse,
                                         HierLevelStats* stats = nullptr) {
  using detail::Section;
  const int v = vn.vnode_of[my_rank];
  const int leader = vn.LeaderOf(v);
  const int vsize = vn.size[v];
  const int me_local = my_rank - leader;

  // --- Phase A: split pieces into self / intra-direct / cross ------------
  std::vector<std::byte> self_piece;
  std::vector<const BytePiece*> direct(static_cast<std::size_t>(vsize),
                                       nullptr);  // by local member index
  std::vector<Section> cross;  // dest-ascending (pieces are)
  for (const BytePiece& piece : pieces) {
    if (piece.bytes <= 0) continue;
    if (vn.vnode_of[piece.dest] == v) {
      if (piece.dest == my_rank) {
        self_piece.assign(piece.data, piece.data + piece.bytes);
      } else {
        direct[static_cast<std::size_t>(piece.dest - leader)] = &piece;
      }
    } else {
      Section s;
      s.dest = piece.dest;
      s.payload.assign(piece.data, piece.data + piece.bytes);
      cross.push_back(std::move(s));
    }
  }

  std::vector<std::vector<std::byte>> bufs_a;
  std::vector<mpisim::SparseSendBlock> sends_a;
  for (int q = 0; q < vsize; ++q) {
    const int g = leader + q;
    if (g == my_rank) continue;
    const BytePiece* d = direct[static_cast<std::size_t>(q)];
    const bool relay_here = (g == leader) && !cross.empty();
    if (d == nullptr && !relay_here) continue;
    std::vector<std::byte> msg;
    detail::PutI64(msg, d != nullptr ? d->bytes : 0);
    if (d != nullptr) detail::Append(msg, d->data, d->bytes);
    if (relay_here) detail::PutSections(msg, cross);
    bufs_a.push_back(std::move(msg));
    sends_a.push_back(mpisim::SparseSendBlock{
        .dest = g, .data = bufs_a.back().data(),
        .count = static_cast<int>(bufs_a.back().size())});
  }
  if (stats != nullptr) {
    stats->intra_messages += static_cast<std::int64_t>(sends_a.size());
    for (const auto& b : bufs_a) {
      stats->intra_bytes += static_cast<std::int64_t>(b.size());
    }
  }
  const std::vector<mpisim::SparseRecvMessage> deliv_a = sparse(
      std::span<const mpisim::SparseSendBlock>(sends_a));

  // Parse phase-A deliveries: direct payloads by local source index; at
  // the leader, buffered cross pieces grouped per source (sources arrive
  // ascending; own cross pieces belong at slot `me == leader`, the
  // smallest rank of the vnode, so they go first).
  std::vector<std::vector<std::byte>> direct_in(
      static_cast<std::size_t>(vsize));
  std::vector<std::vector<Section>> relays;  // source-ascending
  if (my_rank == leader && !cross.empty()) relays.push_back(std::move(cross));
  for (const mpisim::SparseRecvMessage& m : deliv_a) {
    const std::byte* p = m.bytes.data();
    const std::size_t avail = m.bytes.size();
    if (avail < 8) {
      throw mpisim::UsageError("hier exchange: truncated phase-A message");
    }
    const std::int64_t db = detail::GetI64(p);
    if (db < 0 || avail < 8 + static_cast<std::size_t>(db)) {
      throw mpisim::UsageError("hier exchange: truncated phase-A payload");
    }
    direct_in[static_cast<std::size_t>(m.source - leader)]
        .assign(p + 8, p + 8 + db);
    std::size_t off = 8 + static_cast<std::size_t>(db);
    if (off < avail) {  // relay bundle (only the leader receives these)
      std::vector<Section> r;
      off += detail::GetSections(p + off, avail - off, &r);
      relays.push_back(std::move(r));
    }
  }

  // --- Phase B: leaders merge per destination, one bundle per vnode ------
  std::vector<std::vector<std::byte>> bufs_b;
  std::vector<mpisim::SparseSendBlock> sends_b;
  if (my_rank == leader && !relays.empty()) {
    // Merge: sections of each relay are dest-ascending and relays are
    // source-ascending, so appending relay-by-relay into a per-dest
    // accumulator yields source-ascending section payloads.
    std::vector<Section> merged;  // dest-ascending
    for (std::vector<Section>& r : relays) {
      std::vector<Section> next;
      next.reserve(merged.size() + r.size());
      std::size_t i = 0, j = 0;
      while (i < merged.size() || j < r.size()) {
        if (j >= r.size() ||
            (i < merged.size() && merged[i].dest < r[j].dest)) {
          next.push_back(std::move(merged[i++]));
        } else if (i >= merged.size() || r[j].dest < merged[i].dest) {
          next.push_back(std::move(r[j++]));
        } else {
          merged[i].payload.insert(merged[i].payload.end(),
                                   r[j].payload.begin(), r[j].payload.end());
          next.push_back(std::move(merged[i]));
          ++i;
          ++j;
        }
      }
      merged = std::move(next);
    }
    // One bundle per destination vnode (merged is dest-ascending and
    // vnodes are contiguous rank ranges, so destinations of one vnode
    // are consecutive).
    for (std::size_t i = 0; i < merged.size();) {
      const int u = vn.vnode_of[merged[i].dest];
      std::size_t j = i;
      while (j < merged.size() && vn.vnode_of[merged[j].dest] == u) ++j;
      std::vector<std::byte> msg;
      detail::PutSections(
          msg, std::span<const Section>(merged.data() + i, j - i));
      bufs_b.push_back(std::move(msg));
      sends_b.push_back(mpisim::SparseSendBlock{
          .dest = vn.LeaderOf(u), .data = bufs_b.back().data(),
          .count = static_cast<int>(bufs_b.back().size())});
      i = j;
    }
  }
  if (stats != nullptr) {
    stats->inter_messages += static_cast<std::int64_t>(sends_b.size());
    for (const auto& b : bufs_b) {
      stats->inter_bytes += static_cast<std::int64_t>(b.size());
    }
  }
  const std::vector<mpisim::SparseRecvMessage> deliv_b = sparse(
      std::span<const mpisim::SparseSendBlock>(sends_b));

  // Parse phase-B bundles: per local destination, (source vnode, payload)
  // pairs, source-vnode-ascending (deliveries arrive ordered by source
  // leader rank, and leader order == vnode order).
  std::vector<std::vector<std::pair<int, std::vector<std::byte>>>> for_member(
      static_cast<std::size_t>(vsize));
  for (const mpisim::SparseRecvMessage& m : deliv_b) {
    const int u = vn.vnode_of[m.source];
    std::vector<Section> sections;
    detail::GetSections(m.bytes.data(), m.bytes.size(), &sections);
    for (Section& s : sections) {
      for_member[static_cast<std::size_t>(s.dest - leader)]
          .emplace_back(u, std::move(s.payload));
    }
  }

  // --- Phase C: leader scatters remote bytes to local destinations -------
  std::vector<std::byte> my_lower, my_upper;
  std::vector<std::vector<std::byte>> bufs_c;
  std::vector<mpisim::SparseSendBlock> sends_c;
  if (my_rank == leader) {
    for (int q = 0; q < vsize; ++q) {
      std::vector<std::byte> lower, upper;
      for (auto& [u, payload] : for_member[static_cast<std::size_t>(q)]) {
        auto& out = u < v ? lower : upper;
        out.insert(out.end(), payload.begin(), payload.end());
      }
      if (q == 0) {  // the leader itself: no message
        my_lower = std::move(lower);
        my_upper = std::move(upper);
        continue;
      }
      if (lower.empty() && upper.empty()) continue;
      std::vector<std::byte> msg;
      detail::PutI64(msg, static_cast<std::int64_t>(lower.size()));
      detail::Append(msg, lower.data(), static_cast<std::int64_t>(lower.size()));
      detail::Append(msg, upper.data(), static_cast<std::int64_t>(upper.size()));
      bufs_c.push_back(std::move(msg));
      sends_c.push_back(mpisim::SparseSendBlock{
          .dest = leader + q, .data = bufs_c.back().data(),
          .count = static_cast<int>(bufs_c.back().size())});
    }
  }
  if (stats != nullptr) {
    stats->intra_messages += static_cast<std::int64_t>(sends_c.size());
    for (const auto& b : bufs_c) {
      stats->intra_bytes += static_cast<std::int64_t>(b.size());
    }
  }
  const std::vector<mpisim::SparseRecvMessage> deliv_c = sparse(
      std::span<const mpisim::SparseSendBlock>(sends_c));
  for (const mpisim::SparseRecvMessage& m : deliv_c) {
    const std::byte* p = m.bytes.data();
    const std::size_t avail = m.bytes.size();
    if (avail < 8) {
      throw mpisim::UsageError("hier exchange: truncated phase-C message");
    }
    const std::int64_t lb = detail::GetI64(p);
    if (lb < 0 || avail < 8 + static_cast<std::size_t>(lb)) {
      throw mpisim::UsageError("hier exchange: truncated phase-C payload");
    }
    my_lower.assign(p + 8, p + 8 + lb);
    my_upper.assign(p + 8 + lb, p + avail);
  }

  // --- Final assembly: lower nodes ++ own-node block ++ upper nodes ------
  std::vector<std::byte> result = std::move(my_lower);
  for (int q = 0; q < vsize; ++q) {
    const std::vector<std::byte>& block =
        q == me_local ? self_piece : direct_in[static_cast<std::size_t>(q)];
    result.insert(result.end(), block.begin(), block.end());
  }
  result.insert(result.end(), my_upper.begin(), my_upper.end());
  return result;
}

}  // namespace topo
