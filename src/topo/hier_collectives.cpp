#include "topo/hier_collectives.hpp"

#include <cstring>

#include "mpisim/datatype.hpp"
#include "mpisim/nbc.hpp"
#include "mpisim/runtime.hpp"
#include "rbc/collectives.hpp"
#include "rbc/p2p.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace topo {
namespace {

using rbc::Comm;
using rbc::Datatype;
using rbc::ReduceOp;
using rbc::sanitize::CollKind;

std::vector<std::int64_t> LeadersOf(const VnodeMap& vn) {
  return std::vector<std::int64_t>(vn.first.begin(), vn.first.end());
}

/// Vnode sub-communicator of the calling rank (O(1), local).
Comm SubOf(const Comm& comm, const VnodeMap& vn, int v) {
  Comm sub;
  rbc::Split_RBC_Comm(comm, vn.first[v], vn.first[v] + vn.size[v] - 1, &sub);
  return sub;
}

}  // namespace

VnodeMap VnodeMapOf(const rbc::Comm& comm) {
  mpisim::RankContext& rc = mpisim::Ctx();
  std::vector<int> nodes(static_cast<std::size_t>(comm.Size()));
  for (int r = 0; r < comm.Size(); ++r) {
    nodes[static_cast<std::size_t>(r)] =
        rc.runtime->NodeOf(comm.Mpi().WorldRank(comm.ToMpi(r)));
  }
  return VnodesOf(nodes);
}

int HierBcast(void* buffer, int count, rbc::Datatype dt, int root,
              const rbc::Comm& comm, const VnodeMap* vn_in) {
  rbc::detail::ValidateCollective(comm, root, "HierBcast");
  const VnodeMap vn = vn_in != nullptr ? *vn_in : VnodeMapOf(comm);
  const int me = comm.Rank();
  const std::size_t bytes = rbc::detail::ByteCount(count, dt);
  auto rec = rbc::sanitize::MakeOp(CollKind::kHierBcast, root, kTagHierBcast,
                                   count,
                                   static_cast<std::uint32_t>(SizeOf(dt)));
  if (rbc::sanitize::Enabled()) {
    rec.counts_to = LeadersOf(vn);
    if (me == root) rec.sig = rbc::sanitize::PayloadSignature(buffer, bytes);
  }
  rbc::sanitize::CollectiveScope scope(comm, std::move(rec));
  if (me != root) scope.ArmExitSignatureCheck(buffer, bytes);

  const int v = vn.vnode_of[me];
  const int v_root = vn.vnode_of[root];
  const Comm sub = SubOf(comm, vn, v);
  // The root's node fills in first (its leader needs the payload before
  // the leader tree), every other node redistributes after.
  if (v == v_root && vn.size[v] > 1) {
    rbc::Bcast(buffer, count, dt, root - vn.first[v], sub);
  }
  if (me == vn.LeaderOf(v) && vn.Count() > 1) {
    const auto tree =
        mpisim::detail::BinomialTree::Compute(v, vn.Count(), v_root);
    if (tree.parent >= 0) {
      rbc::detail::RecvInternal(buffer, count, dt, vn.LeaderOf(tree.parent),
                                kTagHierBcast, comm);
    }
    for (int child : tree.children) {
      rbc::detail::SendInternal(buffer, count, dt, vn.LeaderOf(child),
                                kTagHierBcast, comm);
    }
  }
  if (v != v_root && vn.size[v] > 1) {
    rbc::Bcast(buffer, count, dt, /*root=*/0, sub);
  }
  return 0;
}

int HierAllreduce(const void* sendbuf, void* recvbuf, int count,
                  rbc::Datatype dt, rbc::ReduceOp op, const rbc::Comm& comm,
                  const VnodeMap* vn_in) {
  rbc::detail::ValidateCollective(comm, /*root=*/0, "HierAllreduce");
  const VnodeMap vn = vn_in != nullptr ? *vn_in : VnodeMapOf(comm);
  const int me = comm.Rank();
  const std::size_t bytes = rbc::detail::ByteCount(count, dt);
  auto rec = rbc::sanitize::MakeOp(CollKind::kHierAllreduce, /*root=*/-1,
                                   kTagHierAllreduce, count,
                                   static_cast<std::uint32_t>(SizeOf(dt)));
  if (rbc::sanitize::Enabled()) rec.counts_to = LeadersOf(vn);
  rbc::sanitize::CollectiveScope scope(comm, std::move(rec));

  const int v = vn.vnode_of[me];
  const Comm sub = SubOf(comm, vn, v);
  if (vn.size[v] > 1) {
    rbc::Reduce(sendbuf, recvbuf, count, dt, op, /*root=*/0, sub);
  } else if (bytes != 0) {
    std::memcpy(recvbuf, sendbuf, bytes);
  }
  if (me == vn.LeaderOf(v) && vn.Count() > 1) {
    const auto tree = mpisim::detail::BinomialTree::Compute(v, vn.Count(),
                                                            /*root=*/0);
    std::vector<std::byte> partial(bytes);
    for (int child : tree.children) {
      rbc::detail::RecvInternal(partial.data(), count, dt,
                                vn.LeaderOf(child), kTagHierAllreduce, comm);
      mpisim::ApplyReduce(op, dt, partial.data(), recvbuf, count);
    }
    if (tree.parent >= 0) {
      rbc::detail::SendInternal(recvbuf, count, dt, vn.LeaderOf(tree.parent),
                                kTagHierAllreduce, comm);
      rbc::detail::RecvInternal(recvbuf, count, dt, vn.LeaderOf(tree.parent),
                                kTagHierAllreduce, comm);
    }
    for (int child : tree.children) {
      rbc::detail::SendInternal(recvbuf, count, dt, vn.LeaderOf(child),
                                kTagHierAllreduce, comm);
    }
  }
  if (vn.size[v] > 1) {
    rbc::Bcast(recvbuf, count, dt, /*root=*/0, sub);
  }
  return 0;
}

int HierGatherv(const void* sendbuf, int count, rbc::Datatype dt,
                void* recvbuf, std::span<const int> recvcounts,
                std::span<const int> displs, int root, const rbc::Comm& comm,
                const VnodeMap* vn_in) {
  rbc::detail::ValidateCollective(comm, root, "HierGatherv");
  const VnodeMap vn = vn_in != nullptr ? *vn_in : VnodeMapOf(comm);
  const int me = comm.Rank();
  const std::size_t esz = SizeOf(dt);
  auto rec = rbc::sanitize::MakeOp(CollKind::kHierGatherv, root,
                                   kTagHierGatherv, count,
                                   static_cast<std::uint32_t>(esz));
  if (rbc::sanitize::Enabled()) {
    rec.counts_to = LeadersOf(vn);
    if (me == root) rec.counts_from = rbc::sanitize::ToCounts(recvcounts);
  }
  rbc::sanitize::CollectiveScope scope(comm, std::move(rec));

  const int v = vn.vnode_of[me];
  const int v_root = vn.vnode_of[root];
  const Comm sub = SubOf(comm, vn, v);
  auto* out = static_cast<std::byte*>(recvbuf);

  if (v == v_root) {
    // The root's own node gathers straight into recvbuf: the sub-Gatherv
    // takes the absolute displacements, so members land in place.
    if (vn.size[v] > 1) {
      std::vector<int> rc, rd;
      if (me == root) {
        rc.reserve(static_cast<std::size_t>(vn.size[v]));
        rd.reserve(static_cast<std::size_t>(vn.size[v]));
        for (int i = 0; i < vn.size[v]; ++i) {
          rc.push_back(recvcounts[static_cast<std::size_t>(vn.first[v] + i)]);
          rd.push_back(displs[static_cast<std::size_t>(vn.first[v] + i)]);
        }
      }
      rbc::Gatherv(sendbuf, count, dt, recvbuf, rc, rd, root - vn.first[v],
                   sub);
    } else if (count != 0) {
      std::memcpy(out + static_cast<std::size_t>(
                            displs[static_cast<std::size_t>(root)]) * esz,
                  sendbuf, static_cast<std::size_t>(count) * esz);
    }
  } else {
    // Everyone else gathers to the node leader (contribution counts
    // first -- recvcounts is significant at the global root only), and
    // the leader forwards one concatenated message to the root.
    const bool leader = me == vn.LeaderOf(v);
    std::vector<int> member_counts(
        leader ? static_cast<std::size_t>(vn.size[v]) : 0);
    rbc::Gather(&count, 1, Datatype::kInt32, member_counts.data(), /*root=*/0,
                sub);
    std::vector<int> bd;
    int total = 0;
    if (leader) {
      bd.reserve(member_counts.size());
      for (int c : member_counts) {
        bd.push_back(total);
        total += c;
      }
    }
    std::vector<std::byte> blob(static_cast<std::size_t>(total) * esz);
    rbc::Gatherv(sendbuf, count, dt, blob.data(), member_counts, bd,
                 /*root=*/0, sub);
    if (leader) {
      rbc::detail::SendInternal(blob.data(), total, dt, root, kTagHierGatherv,
                                comm);
    }
  }
  if (me == root) {
    for (int u = 0; u < vn.Count(); ++u) {
      if (u == v_root) continue;
      int total_u = 0;
      for (int i = 0; i < vn.size[u]; ++i) {
        total_u += recvcounts[static_cast<std::size_t>(vn.first[u] + i)];
      }
      std::vector<std::byte> blob(static_cast<std::size_t>(total_u) * esz);
      rbc::detail::RecvInternal(blob.data(), total_u, dt, vn.LeaderOf(u),
                                kTagHierGatherv, comm);
      std::size_t off = 0;
      for (int i = 0; i < vn.size[u]; ++i) {
        const auto m = static_cast<std::size_t>(vn.first[u] + i);
        const std::size_t b = static_cast<std::size_t>(recvcounts[m]) * esz;
        if (b != 0) {
          std::memcpy(out + static_cast<std::size_t>(displs[m]) * esz,
                      blob.data() + off, b);
        }
        off += b;
      }
    }
  }
  return 0;
}

int HierAlltoallv(const void* sendbuf, std::span<const int> sendcounts,
                  std::span<const int> sdispls, rbc::Datatype dt,
                  void* recvbuf, std::span<const int> recvcounts,
                  std::span<const int> rdispls, const rbc::Comm& comm,
                  std::int64_t segment_bytes, const VnodeMap* vn_in,
                  HierLevelStats* stats) {
  rbc::detail::ValidateCollective(comm, /*root=*/0, "HierAlltoallv");
  const int p = comm.Size();
  if (static_cast<int>(sendcounts.size()) != p ||
      static_cast<int>(sdispls.size()) != p ||
      static_cast<int>(recvcounts.size()) != p ||
      static_cast<int>(rdispls.size()) != p) {
    throw mpisim::UsageError("topo::HierAlltoallv: count arrays must have "
                             "Size() entries");
  }
  const VnodeMap vn = vn_in != nullptr ? *vn_in : VnodeMapOf(comm);
  const int me = comm.Rank();
  const std::size_t esz = SizeOf(dt);
  std::int64_t my_total = 0;
  for (int c : sendcounts) my_total += c;
  auto rec = rbc::sanitize::MakeOp(CollKind::kHierAlltoallv, /*root=*/-1,
                                   kTagHierAlltoallv, my_total,
                                   static_cast<std::uint32_t>(esz),
                                   segment_bytes);
  if (rbc::sanitize::Enabled()) {
    rec.counts_to = LeadersOf(vn);
    rec.counts_from = rbc::sanitize::ToCounts(recvcounts);
  }
  rbc::sanitize::CollectiveScope scope(comm, std::move(rec));

  const auto* in = static_cast<const std::byte*>(sendbuf);
  std::vector<BytePiece> pieces;
  for (int d = 0; d < p; ++d) {
    if (sendcounts[static_cast<std::size_t>(d)] <= 0) continue;
    pieces.push_back(BytePiece{
        .dest = d,
        .data = in + static_cast<std::size_t>(
                         sdispls[static_cast<std::size_t>(d)]) * esz,
        .bytes = static_cast<std::int64_t>(
                     sendcounts[static_cast<std::size_t>(d)]) *
                 static_cast<std::int64_t>(esz)});
  }
  const auto sparse = [&](std::span<const mpisim::SparseSendBlock> sends) {
    std::vector<rbc::SparseRecvMessage> received;
    rbc::SparseAlltoallv(sends, Datatype::kByte, &received, comm,
                         kTagHierAlltoallv, segment_bytes);
    return received;
  };
  const std::vector<std::byte> result =
      HierExchangeBytes(vn, me, pieces, sparse, stats);

  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t off = 0;
  for (int s = 0; s < p; ++s) {
    const std::size_t b =
        static_cast<std::size_t>(recvcounts[static_cast<std::size_t>(s)]) *
        esz;
    if (off + b > result.size()) {
      throw mpisim::UsageError(
          "topo::HierAlltoallv: received fewer bytes than recvcounts "
          "expect (mismatched counts)");
    }
    if (b != 0) {
      std::memcpy(out + static_cast<std::size_t>(
                            rdispls[static_cast<std::size_t>(s)]) * esz,
                  result.data() + off, b);
    }
    off += b;
  }
  if (off != result.size()) {
    throw mpisim::UsageError(
        "topo::HierAlltoallv: received more bytes than recvcounts expect "
        "(mismatched counts)");
  }
  return 0;
}

}  // namespace topo
