// Machine-topology descriptor for the node-aware hierarchical transport.
//
// The paper models the machine as flat single-ported alpha-beta, but its
// multilevel algorithms exist precisely because real machines are not
// flat: ranks on the same node talk over shared memory (cheap alpha,
// cheap beta), ranks on different nodes over the network (expensive
// both). This descriptor names that two-level structure: a partition of
// the world ranks into *nodes*, each node a contiguous block of world
// ranks (the layout every block-cyclic launcher produces). It is pure
// data -- installed into mpisim::Runtime::Options, consulted by the
// substrate's cost seams and by the hierarchical collectives.
//
// An empty topology means "flat machine": every rank on node 0, no
// hierarchical cost distinction, hierarchical collectives degrade to
// their flat counterparts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace topo {

/// Partition of world ranks [0, p) into contiguous node blocks.
/// node_sizes[i] ranks belong to node i; sizes may be ragged (and 1-rank
/// nodes are legal). Empty node_sizes = flat machine.
class Topology {
 public:
  Topology() = default;

  /// Flat machine: no node structure.
  static Topology Flat() { return Topology(); }

  /// p ranks in nodes of `node_size` each; the last node takes the
  /// remainder when node_size does not divide p.
  static Topology Uniform(int p, int node_size) {
    Topology t;
    if (node_size <= 0) return t;
    for (int first = 0; first < p; first += node_size) {
      t.node_sizes_.push_back(std::min(node_size, p - first));
    }
    t.RebuildFirsts();
    return t;
  }

  /// Explicit (possibly ragged) node sizes; every entry must be >= 1.
  static Topology OfNodeSizes(std::vector<int> node_sizes) {
    Topology t;
    t.node_sizes_ = std::move(node_sizes);
    t.RebuildFirsts();
    return t;
  }

  /// True when no node structure is declared.
  bool Empty() const { return node_sizes_.empty(); }

  /// Number of declared nodes (0 when flat).
  int NodeCount() const { return static_cast<int>(node_sizes_.size()); }

  /// Total ranks covered by the declared nodes.
  int TotalRanks() const { return total_; }

  /// Node of a world rank. Flat topology: everything is node 0.
  /// O(log nodes) binary search over the block starts.
  int NodeOf(int world_rank) const {
    if (Empty()) return 0;
    int lo = 0;
    int hi = NodeCount() - 1;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (node_firsts_[mid] <= world_rank) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  /// First world rank of a node.
  int NodeFirst(int node) const { return node_firsts_[node]; }

  /// Ranks on a node.
  int NodeSize(int node) const { return node_sizes_[node]; }

  /// Validates internal consistency against a world of `p` ranks; returns
  /// an empty string when valid, else a diagnostic.
  std::string Validate(int p) const {
    if (Empty()) return {};
    for (std::size_t i = 0; i < node_sizes_.size(); ++i) {
      if (node_sizes_[i] < 1) {
        return "topology: node " + std::to_string(i) + " has size " +
               std::to_string(node_sizes_[i]) + " (must be >= 1)";
      }
    }
    if (TotalRanks() != p) {
      return "topology: node sizes cover " + std::to_string(TotalRanks()) +
             " ranks but the runtime has " + std::to_string(p);
    }
    return {};
  }

  const std::vector<int>& NodeSizes() const { return node_sizes_; }

 private:
  void RebuildFirsts() {
    node_firsts_.clear();
    int acc = 0;
    for (int s : node_sizes_) {
      node_firsts_.push_back(acc);
      acc += s;
    }
    total_ = acc;
  }

  std::vector<int> node_sizes_;
  std::vector<int> node_firsts_;  // first world rank of each node
  int total_ = 0;
};

}  // namespace topo
