#include "sort/partition.hpp"

#include <algorithm>

namespace jsort {

PartitionResult Partition(std::span<const double> data, double pivot,
                          bool less_equal) {
  PartitionResult r;
  r.small.reserve(data.size());
  r.large.reserve(data.size());
  if (less_equal) {
    for (double x : data) {
      (x <= pivot ? r.small : r.large).push_back(x);
    }
  } else {
    for (double x : data) {
      (x < pivot ? r.small : r.large).push_back(x);
    }
  }
  return r;
}

std::size_t PartitionInPlace(std::span<double> data, double pivot,
                             bool less_equal) {
  auto mid =
      less_equal
          ? std::partition(data.begin(), data.end(),
                           [pivot](double x) { return x <= pivot; })
          : std::partition(data.begin(), data.end(),
                           [pivot](double x) { return x < pivot; });
  return static_cast<std::size_t>(mid - data.begin());
}

}  // namespace jsort
