#include "sort/partition.hpp"

#include <algorithm>
#include <limits>

namespace jsort {
namespace {

/// Fills tree[node] (1-based heap order) with the medians of the padded
/// splitter array s[lo..hi), the standard implicit-search-tree layout:
/// descending with i = 2i + (x >= tree[i]) reproduces upper_bound over s.
void FillTree(std::span<const double> s, std::size_t lo, std::size_t hi,
              std::size_t node, std::vector<double>& tree) {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  tree[node] = s[mid];
  FillTree(s, lo, mid, 2 * node, tree);
  FillTree(s, mid + 1, hi, 2 * node + 1, tree);
}

}  // namespace

PartitionResult Partition(std::span<const double> data, double pivot,
                          bool less_equal) {
  PartitionResult r;
  r.small.reserve(data.size());
  r.large.reserve(data.size());
  if (less_equal) {
    for (double x : data) {
      (x <= pivot ? r.small : r.large).push_back(x);
    }
  } else {
    for (double x : data) {
      (x < pivot ? r.small : r.large).push_back(x);
    }
  }
  return r;
}

KWayBuckets PartitionKWay(std::span<const double> data,
                          std::span<const double> splitters) {
  const int k = static_cast<int>(splitters.size()) + 1;
  KWayBuckets r;
  r.offsets.assign(static_cast<std::size_t>(k) + 1, 0);
  if (k == 1) {
    r.elements.assign(data.begin(), data.end());
    r.offsets[1] = static_cast<std::int64_t>(data.size());
    return r;
  }

  // Implicit complete binary tree over the splitters, padded to a power of
  // two with +inf so every leaf path has the same length. Elements equal
  // to +inf still land in the last real bucket via the clamp below (a pad
  // compares <= them, pushing the raw index past k-1).
  int log2cap = 1;
  while ((1 << log2cap) < k) ++log2cap;
  const int cap = 1 << log2cap;
  std::vector<double> padded(static_cast<std::size_t>(cap) - 1,
                             std::numeric_limits<double>::infinity());
  std::copy(splitters.begin(), splitters.end(), padded.begin());
  std::vector<double> tree(static_cast<std::size_t>(cap));
  FillTree(padded, 0, padded.size(), 1, tree);

  // Classification pass: branchless tree descent per element; the bucket
  // oracle is kept so the placement pass does not re-descend.
  const std::size_t n = data.size();
  std::vector<std::uint32_t> oracle(n);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
  const std::uint32_t last = static_cast<std::uint32_t>(k) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = data[i];
    std::uint32_t node = 1;
    for (int l = 0; l < log2cap; ++l) {
      node = 2 * node + static_cast<std::uint32_t>(x >= tree[node]);
    }
    const std::uint32_t b =
        std::min(node - static_cast<std::uint32_t>(cap), last);
    oracle[i] = b;
    ++counts[b];
  }

  for (int b = 0; b < k; ++b) {
    r.offsets[static_cast<std::size_t>(b) + 1] =
        r.offsets[static_cast<std::size_t>(b)] +
        counts[static_cast<std::size_t>(b)];
  }

  // Placement pass: one flat allocation, per-bucket write cursors.
  r.elements.resize(n);
  std::vector<std::int64_t> cursor(r.offsets.begin(), r.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    r.elements[static_cast<std::size_t>(
        cursor[oracle[i]]++)] = data[i];
  }
  return r;
}

std::size_t PartitionInPlace(std::span<double> data, double pivot,
                             bool less_equal) {
  auto mid =
      less_equal
          ? std::partition(data.begin(), data.end(),
                           [pivot](double x) { return x <= pivot; })
          : std::partition(data.begin(), data.end(),
                           [pivot](double x) { return x < pivot; });
  return static_cast<std::size_t>(mid - data.begin());
}

}  // namespace jsort
