#include "sort/quickselect.hpp"

#include <algorithm>
#include <random>
#include <utility>

#include "mpisim/error.hpp"

namespace jsort {

KthSplit QuickselectKth(std::span<double> data, std::size_t k,
                        std::uint64_t seed) {
  if (k >= data.size()) {
    throw mpisim::UsageError("QuickselectKth: k out of range");
  }
  std::mt19937_64 rng(seed);
  std::size_t lo = 0;
  std::size_t hi = data.size();  // select within [lo, hi)
  // Invariant: data[0, lo) < every element of [lo, hi) < data[hi, n),
  // strictly -- each discarded side excludes the pivot's equal run, so
  // no duplicate of the eventual answer survives outside the window.
  while (true) {
    if (hi - lo == 1) {
      return KthSplit{data[lo], lo, lo + 1};
    }
    const std::size_t pi =
        lo + std::uniform_int_distribution<std::size_t>(0, hi - lo - 1)(rng);
    const double pivot = data[pi];
    // Three-way partition of [lo, hi) around pivot to guarantee progress
    // on duplicate-heavy inputs.
    std::size_t lt = lo;
    std::size_t i = lo;
    std::size_t gt = hi;
    while (i < gt) {
      if (data[i] < pivot) {
        std::swap(data[lt++], data[i++]);
      } else if (data[i] > pivot) {
        std::swap(data[i], data[--gt]);
      } else {
        ++i;
      }
    }
    // [lo, lt): < pivot, [lt, gt): == pivot, [gt, hi): > pivot.
    if (k < lt) {
      hi = lt;
    } else if (k >= gt) {
      lo = gt;
    } else {
      return KthSplit{pivot, lt, gt};
    }
  }
}

void QuickselectSmallest(std::span<double> data, std::size_t k,
                         std::uint64_t seed) {
  if (k == 0 || k >= data.size()) return;
  // After selecting index k-1, data[0, less_equal) are all <= the k-th
  // smallest value and less_equal >= k, so the prefix of k elements is
  // exactly the k smallest (ties resolved arbitrarily).
  QuickselectKth(data, k - 1, seed);
}

}  // namespace jsort
