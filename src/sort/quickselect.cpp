#include "sort/quickselect.hpp"

#include <algorithm>
#include <random>
#include <utility>

namespace jsort {

void QuickselectSmallest(std::span<double> data, std::size_t k,
                         std::uint64_t seed) {
  if (k == 0 || k >= data.size()) return;
  std::mt19937_64 rng(seed);
  std::size_t lo = 0;
  std::size_t hi = data.size();  // select within [lo, hi)
  std::size_t want = k;          // absolute index boundary
  while (hi - lo > 1) {
    const std::size_t pi =
        lo + std::uniform_int_distribution<std::size_t>(0, hi - lo - 1)(rng);
    const double pivot = data[pi];
    // Three-way partition of [lo, hi) around pivot to guarantee progress
    // on duplicate-heavy inputs.
    std::size_t lt = lo;
    std::size_t i = lo;
    std::size_t gt = hi;
    while (i < gt) {
      if (data[i] < pivot) {
        std::swap(data[lt++], data[i++]);
      } else if (data[i] > pivot) {
        std::swap(data[i], data[--gt]);
      } else {
        ++i;
      }
    }
    // [lo, lt): < pivot, [lt, gt): == pivot, [gt, hi): > pivot.
    if (want <= lt) {
      hi = lt;
    } else if (want >= gt) {
      lo = gt;
    } else {
      return;  // the boundary falls inside the run of pivot duplicates
    }
  }
}

}  // namespace jsort
