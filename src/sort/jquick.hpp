// Janus Quicksort (JQuick) -- Section VII of the paper.
//
// A recursive distributed quicksort with *perfect data balance*: after
// every level each process stores exactly its quota of n/p elements. Task
// splits generally do not align with process boundaries; the straddling
// process -- the janus process -- belongs to both subgroups and advances
// both subtasks simultaneously, which is only possible because every
// communication operation is nonblocking and every group split is cheap.
//
// One distributed level = pivot selection, local partition, exclusive
// prefix sums over the (small, large) counts, greedy capacity-filling data
// assignment, and a nonblocking data exchange. Tasks covering <= 2
// processes become base cases, deferred to a second phase so a janus never
// delays a larger subtask (Section VII); the two-process base case
// exchanges data and quickselects each partner's share.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/sampling.hpp"
#include "sort/transport.hpp"

namespace jsort {

/// Ordering of a janus process's two group splits (Section VIII-C).
/// kAlternating bounds creation cascades (every other janus creates the
/// left group first); kCascaded always creates left first, provoking the
/// chains measured in Figure 6 / discussed for Figure 8.
enum class SplitSchedule {
  kAlternating,
  kCascaded,
};

struct JQuickConfig {
  PivotPolicy pivot = PivotPolicy::kMedianOfSamples;
  SampleParams samples{};
  SplitSchedule schedule = SplitSchedule::kAlternating;
  /// Delivery path of the per-level data exchange (jsort::exchange).
  /// kAuto coalesces the (small, large) sides into one sparse message per
  /// destination on large groups and falls back to the dense Alltoallv on
  /// small ones.
  exchange::Mode exchange_mode = exchange::Mode::kAuto;
  /// Large-message segment limit of the per-level exchange (bytes; 0 =
  /// unsegmented). Past it, payload messages are pipelined/chunked and
  /// kAuto prefers the chunk-capable sparse path over coalesced. Defaults
  /// to the measured crossover (see exchange::kDefaultSegmentBytes).
  std::int64_t segment_bytes = exchange::kDefaultSegmentBytes;
  std::uint64_t seed = 1;
};

/// Statistics of one JQuick run (per calling rank).
struct JQuickStats {
  int distributed_levels = 0;   // deepest level observed locally
  int janus_episodes = 0;       // times this rank was a janus process
  int base_tasks_1p = 0;
  int base_tasks_2p = 0;
  std::int64_t elements_sent = 0;
  std::int64_t messages_sent = 0;
  /// Wire-level payload messages after segmentation (== messages_sent of
  /// the per-level exchanges when segment_bytes is 0).
  std::int64_t segments_sent = 0;
};

/// Sorts the global data distributed over the transport's group.
/// `local.size()` must be the same on every rank (the paper's n = p * (n/p)
/// assumption; use JQuickSortPadded for arbitrary n). Returns this rank's
/// slice of the globally sorted sequence -- exactly local.size() elements:
/// perfect balance. If `stats` is non-null it receives run statistics.
std::vector<double> JQuickSort(const std::shared_ptr<Transport>& world,
                               std::vector<double> local,
                               const JQuickConfig& cfg = {},
                               JQuickStats* stats = nullptr);

/// Arbitrary-n front end: pads with +infinity sentinels to the next
/// multiple of p, sorts, and strips the sentinels (they all land on the
/// highest ranks). Per-rank input sizes may differ by any amount; the
/// output holds between quota-<pad> and quota elements per rank.
std::vector<double> JQuickSortPadded(const std::shared_ptr<Transport>& world,
                                     std::vector<double> local,
                                     const JQuickConfig& cfg = {},
                                     JQuickStats* stats = nullptr);

}  // namespace jsort
