// Quickselect, used by the two-process base case of JQuick (Section VII):
// after the pairwise data exchange, each partner selects the k elements
// that belong to its side of the boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace jsort {

/// Reorders `data` so its first k elements are the k smallest (in
/// arbitrary order) and the remaining elements are all >= them. Randomized
/// quickselect with expected O(n) time; k may be 0 or data.size().
void QuickselectSmallest(std::span<double> data, std::size_t k,
                         std::uint64_t seed = 0x9E3779B9u);

}  // namespace jsort
