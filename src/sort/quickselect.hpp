// Quickselect kernels.
//
// QuickselectSmallest is used by the two-process base case of JQuick
// (Section VII): after the pairwise data exchange, each partner selects
// the k elements that belong to its side of the boundary.
//
// QuickselectKth is the local workhorse of the distributed selection
// queries (src/query): it reports the k-th order statistic together with
// the three-way split boundary around it, which the distributed top-k
// needs to apportion ties deterministically across ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace jsort {

/// Result of QuickselectKth: the k-th smallest element (0-based) and the
/// three-way split the selection leaves behind. After the call, `data` is
/// reordered so that
///   data[0 .. less)            < value,
///   data[less .. less_equal)  == value   (contains index k), and
///   data[less_equal .. n)      > value.
struct KthSplit {
  double value = 0.0;
  std::size_t less = 0;        // #elements of data strictly < value
  std::size_t less_equal = 0;  // #elements of data <= value
};

/// Selects the k-th smallest element of `data` (0-based; requires
/// k < data.size(), data non-empty). Randomized three-way quickselect,
/// expected O(n); duplicate-heavy inputs cost no extra rounds because the
/// equal run is discarded wholesale each level.
KthSplit QuickselectKth(std::span<double> data, std::size_t k,
                        std::uint64_t seed = 0x9E3779B9u);

/// Reorders `data` so its first k elements are the k smallest (in
/// arbitrary order) and the remaining elements are all >= them. Randomized
/// quickselect with expected O(n) time; k may be 0 or data.size().
void QuickselectSmallest(std::span<double> data, std::size_t k,
                         std::uint64_t seed = 0x9E3779B9u);

}  // namespace jsort
