// Group transport abstraction for the sorting algorithms.
//
// JQuick needs, per task group: nonblocking collectives, tagged
// point-to-point traffic with wildcard probes, and -- the axis of the
// paper's Figure 8 -- a way to split the group:
//  * RbcTransport     splits are rbc::Split_RBC_Comm -- local, O(1), no
//                     communication.
//  * MpiTransport     splits are blocking MPI_Comm_create_group calls with
//                     context-mask agreement and O(group) construction --
//                     the "native MPI" baseline of Figure 8.
//  * IcommTransport   splits are the Section-VI MPI_Icomm_create_group:
//                     local and O(1) for contiguous ranges, but with full
//                     MPI context isolation (an ablation beyond the paper's
//                     measured configurations).
//
// Sanitizer coverage: Transport adds no communication of its own -- every
// backend forwards to the mpisim or rbc collective entry points, so under
// MPISIM_SANITIZE=1 all transport traffic is checked transitively by the
// collective-correctness ledger (mpisim/sanitizer.hpp, rbc/sanitize.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "rbc/rbc.hpp"

namespace jsort {

/// Completion poll of a nonblocking operation: returns true once done;
/// repeated calls after completion remain true and cheap.
using Poll = std::function<bool()>;

using Datatype = mpisim::Datatype;
using ReduceOp = mpisim::ReduceOp;
using Status = mpisim::Status;

/// Sparse-exchange vocabulary, shared with the RBC collective: one
/// outgoing block per destination actually sent to, one delivery per
/// incoming message (raw payload bytes, tagged with the source rank).
using SparseBlock = rbc::SparseSendBlock;
using SparseDelivery = rbc::SparseRecvMessage;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Rank of the caller within this group (always a member).
  virtual int Rank() const = 0;
  virtual int Size() const = 0;

  /// World rank of group rank `r` -- the key for topology queries
  /// (mpisim::Runtime::NodeOf works on world ranks). Purely local.
  virtual int WorldRankOf(int r) const = 0;

  // Nonblocking collectives. `tag` disambiguates simultaneous operations
  // for transports without private contexts (RBC); context-isolated
  // transports may ignore it.
  virtual Poll Ibcast(void* buf, int count, Datatype dt, int root,
                      int tag) = 0;
  virtual Poll Iscan(const void* send, void* recv, int count, Datatype dt,
                     ReduceOp op, int tag) = 0;
  virtual Poll Ireduce(const void* send, void* recv, int count, Datatype dt,
                       ReduceOp op, int root, int tag) = 0;
  virtual Poll Igather(const void* send, int count, Datatype dt, void* recv,
                       int root, int tag) = 0;

  /// Personalized all-to-all with per-peer counts/displacements (elements;
  /// all four arrays sized Size() and significant on every rank). The
  /// count arrays are copied at call time; only the data buffers must stay
  /// alive until the Poll reports completion. Zero-count blocks are still
  /// exchanged, so with segment_bytes == 0 every backend moves exactly
  /// Size()-1 messages. With segment_bytes > 0 each per-peer block ships
  /// as pipelined segments of at most segment_bytes payload bytes (at
  /// least one element each) -- the large-message regime; the per-peer
  /// wire message count is mpisim::AlltoallvSegmentsOf on every backend.
  virtual Poll Ialltoallv(const void* send, std::span<const int> sendcounts,
                          std::span<const int> sdispls, Datatype dt,
                          void* recv, std::span<const int> recvcounts,
                          std::span<const int> rdispls, int tag,
                          std::int64_t segment_bytes = 0) = 0;

  /// Sparse (neighborhood) personalized exchange: only the listed blocks
  /// are transmitted -- no dense counts round, nothing for absent
  /// destinations. Collective over the group. The Poll completes once
  /// every incoming message of this operation has been appended to
  /// `*received`, ordered by source rank; termination is detected by the
  /// backend (two lightweight barriers), so receive counts need not be
  /// known anywhere. Send blocks are copied out at call time; `received`
  /// must stay alive until completion. As with the other collectives, the
  /// tag disambiguates simultaneous operations on overlapping RBC groups
  /// (back-to-back exchanges on one tag are safe -- the second barrier
  /// fences them); context-isolated transports may ignore it. With
  /// segment_bytes > 0 each per-destination payload ships chunked (at
  /// most segment_bytes wire bytes per message, chunk count =
  /// mpisim::SparseChunksOf) instead of as one unbounded eager message;
  /// receivers still get one delivery per source.
  virtual Poll IsparseAlltoallv(std::span<const SparseBlock> sends,
                                Datatype dt,
                                std::vector<SparseDelivery>* received,
                                int tag, std::int64_t segment_bytes = 0) = 0;

  // Point-to-point. Send is eager (completes locally); IprobeAny reports
  // only messages whose source belongs to this group.
  virtual void Send(const void* buf, int count, Datatype dt, int dest,
                    int tag) = 0;
  virtual bool IprobeAny(int tag, Status* st) = 0;
  virtual void Recv(void* buf, int count, Datatype dt, int src, int tag,
                    Status* st = nullptr) = 0;

  /// Creates the sub-group of ranks first..last. Collective over the
  /// subgroup members for MpiTransport (blocking) -- the caller must be a
  /// member. Local for RbcTransport/IcommTransport.
  virtual std::shared_ptr<Transport> Split(int first, int last) = 0;

  /// Human-readable backend name for benchmark output.
  virtual const char* Name() const = 0;
};

/// RBC-backed transport over an existing RBC communicator.
std::shared_ptr<Transport> MakeRbcTransport(rbc::Comm comm);

/// Native-MPI-backed transport (blocking MPI_Comm_create_group splits).
std::shared_ptr<Transport> MakeMpiTransport(mpisim::Comm comm);

/// Section-VI proposal transport (nonblocking tuple-context creation).
std::shared_ptr<Transport> MakeIcommTransport(mpisim::Comm comm);

/// The three split-mechanics backends, as one selectable axis. Every
/// consumer that sweeps backends (benchmarks, the sort service, the
/// examples) goes through this factory, so the set has a single
/// definition.
enum class Backend { kRbc, kMpi, kIcomm };

/// Canonical lower-case backend label ("rbc", "mpi", "icomm"), as used in
/// BENCH_*.json rows and CLI arguments.
const char* BackendName(Backend b);

/// Parses a BackendName label; returns false on unknown input.
bool ParseBackend(std::string_view name, Backend* out);

/// Builds the world transport of `backend` over `world` (for kRbc this
/// creates the RBC communicator locally -- no communication on any
/// backend). Per-job/per-task groups then come from Transport::Split.
std::shared_ptr<Transport> MakeTransport(Backend backend,
                                         mpisim::Comm& world);

}  // namespace jsort
