#include "sort/workload.hpp"

#include <cmath>
#include <random>

namespace jsort {

const char* InputKindName(InputKind kind) {
  switch (kind) {
    case InputKind::kUniform: return "uniform";
    case InputKind::kGaussian: return "gaussian";
    case InputKind::kSortedAsc: return "sorted-asc";
    case InputKind::kSortedDesc: return "sorted-desc";
    case InputKind::kAllEqual: return "all-equal";
    case InputKind::kFewDistinct: return "few-distinct";
    case InputKind::kZipf: return "zipf";
    case InputKind::kBucketKiller: return "bucket-killer";
  }
  return "?";
}

std::vector<double> GenerateInput(InputKind kind, int rank, int p,
                                  std::int64_t count, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(count));
  std::mt19937_64 rng(seed ^ (0x9E3779B97F4A7C15ull *
                              (static_cast<std::uint64_t>(rank) + 1)));
  switch (kind) {
    case InputKind::kUniform: {
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (auto& x : v) x = d(rng);
      break;
    }
    case InputKind::kGaussian: {
      std::normal_distribution<double> d(0.0, 1.0);
      for (auto& x : v) x = d(rng);
      break;
    }
    case InputKind::kSortedAsc: {
      for (std::int64_t i = 0; i < count; ++i) {
        v[static_cast<std::size_t>(i)] =
            static_cast<double>(rank) * static_cast<double>(count) +
            static_cast<double>(i);
      }
      break;
    }
    case InputKind::kSortedDesc: {
      const double base =
          static_cast<double>(p - 1 - rank) * static_cast<double>(count);
      for (std::int64_t i = 0; i < count; ++i) {
        v[static_cast<std::size_t>(i)] =
            base + static_cast<double>(count - 1 - i);
      }
      break;
    }
    case InputKind::kAllEqual: {
      for (auto& x : v) x = 42.0;
      break;
    }
    case InputKind::kFewDistinct: {
      std::uniform_int_distribution<int> d(0, 7);
      for (auto& x : v) x = static_cast<double>(d(rng));
      break;
    }
    case InputKind::kZipf: {
      // Approximate Zipf over 1..1024 via inverse-power sampling.
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (auto& x : v) {
        x = std::floor(std::pow(1024.0, d(rng)));
      }
      break;
    }
    case InputKind::kBucketKiller: {
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (auto& x : v) x = static_cast<double>(rank) + d(rng);
      break;
    }
  }
  return v;
}

}  // namespace jsort
