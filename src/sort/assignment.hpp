// Capacity layout and greedy message assignment of JQuick (Section VII).
//
// Within one task over p group ranks, the receive capacities are:
//   rank 0      -> cap_first   (the "remaining load r of the first process")
//   ranks 1..p-2 -> quota      (the uniform per-process load n/p)
//   rank p-1    -> cap_last
// The task's slot space is the concatenation of these capacity intervals.
// After the prefix sums, small elements fill slots [0, S) and large
// elements fill slots [S, total); the process whose capacity interval
// straddles S is the janus process. Everything here is closed-form local
// arithmetic -- no rank ever needs the full capacity vector.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace jsort {

struct CapacityLayout {
  int p = 1;                    // number of group ranks in the task
  std::int64_t quota = 0;       // uniform interior capacity (n/p)
  std::int64_t cap_first = 0;   // capacity of rank 0
  std::int64_t cap_last = 0;    // capacity of rank p-1 (== cap_first if p==1)

  /// Capacity of rank i.
  std::int64_t CapOf(int i) const;

  /// Sum of capacities of ranks < i (exclusive prefix), O(1).
  std::int64_t PrefixBefore(int i) const;

  /// Total capacity == number of elements of the task.
  std::int64_t Total() const;

  /// Rank whose capacity interval contains `slot` (0 <= slot < Total()).
  int RankOfSlot(std::int64_t slot) const;

  /// Validates internal consistency (positive capacities, quota bounds).
  bool Valid() const;
};

/// One outgoing transfer of the data exchange: `count` consecutive
/// elements to group rank `target`.
struct Chunk {
  int target = 0;
  std::int64_t count = 0;

  friend bool operator==(const Chunk&, const Chunk&) = default;
};

/// Greedy sender-side assignment (Section VII): the caller's elements
/// occupy slot interval [slot_begin, slot_end) of the layout; returns the
/// per-target chunks in slot order. Each sender produces at most
/// 2 + (#ranks spanned) chunks.
std::vector<Chunk> AssignChunks(const CapacityLayout& layout,
                                std::int64_t slot_begin,
                                std::int64_t slot_end);

/// Receive-side bookkeeping: how many of my capacity slots fall into the
/// region [region_begin, region_end)?
std::int64_t OverlapWithRegion(const CapacityLayout& layout, int my_rank,
                               std::int64_t region_begin,
                               std::int64_t region_end);

}  // namespace jsort
