#include "sort/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace jsort {

int SampleParams::TotalSamples(int p, std::int64_t n_over_p) const {
  const double logp = p > 1 ? std::log2(static_cast<double>(p)) : 1.0;
  double s = std::max(k1 * logp, k3);
  s = std::max(s, k2 * static_cast<double>(n_over_p));
  return std::max(1, static_cast<int>(s));
}

mpisim::PairDD ReservoirCandidate(std::span<const double> data,
                                  std::mt19937_64& rng) {
  if (data.empty()) {
    return mpisim::PairDD{-1.0, std::numeric_limits<double>::infinity()};
  }
  std::uniform_real_distribution<double> unit(std::nextafter(0.0, 1.0), 1.0);
  const double u = unit(rng);
  const double key =
      std::pow(u, 1.0 / static_cast<double>(data.size()));
  std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
  return mpisim::PairDD{key, data[pick(rng)]};
}

void DrawSamples(std::span<const double> data, int k, double* out,
                 std::mt19937_64& rng) {
  if (data.empty()) {
    std::fill_n(out, k, std::numeric_limits<double>::infinity());
    return;
  }
  std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
  for (int i = 0; i < k; ++i) out[i] = data[pick(rng)];
}

double MedianOf(std::span<double> samples) {
  if (samples.empty()) return std::numeric_limits<double>::infinity();
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

}  // namespace jsort
