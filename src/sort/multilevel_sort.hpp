// Multi-level sample sort (Section IV, citing Gerbessiotis & Valiant):
// the compromise between single-level sample sort (one data exchange,
// p-1 startups) and hypercube-style recursion (log p exchanges, O(1)
// startups each): agree on k-1 pivots, partition local data into k
// pieces, route piece i to process group i, and recurse within each group.
//
// Group splits use the transport (O(1) local with RBC), so the recursion
// does not pay communicator-construction costs -- the enabling property
// this paper contributes. Output slices are approximately balanced.
//
// The per-level piece routing follows the AMS multilevel k-way exchange
// (Axtmann/Sanders): each sender deterministically assigns piece g to one
// member of group g (spreading senders evenly over the group), and the
// resulting group-wise exchange runs over jsort::exchange, which ships
// only non-empty pieces -- no message startup is ever paid for an empty
// piece, and termination comes from the exchange layer instead of a
// hand-rolled probe loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/transport.hpp"

namespace jsort {

struct MultilevelConfig {
  /// Branching factor: pieces / process groups per level. 0 = topology-
  /// derived: one group per node when the installed cost model is
  /// two-level and the world group spans more than one node (the first
  /// level's groups then align with node boundaries, so the recursion
  /// goes node-local after one exchange), else 4.
  int k = 4;
  /// Samples contributed per rank per splitter selection.
  int oversample = 8;
  std::uint64_t seed = 1;
  /// Delivery path of the per-level group-wise exchange (kAuto: sparse
  /// below the dense threshold -- see exchange.hpp).
  exchange::Mode exchange_mode = exchange::Mode::kAuto;
  /// Large-message segment limit of the per-level exchange (bytes; 0 =
  /// unsegmented): past it, payload messages are chunked/pipelined by the
  /// selected path. Defaults to the measured crossover (see
  /// exchange::kDefaultSegmentBytes).
  std::int64_t segment_bytes = exchange::kDefaultSegmentBytes;
};

struct MultilevelStats {
  int levels = 0;
  /// Non-empty payload messages this rank sent across all levels (empty
  /// pieces and self-destined pieces cost no startup).
  std::int64_t messages_sent = 0;
  /// Wire-level payload messages after segmentation, across all levels
  /// (== messages_sent when segment_bytes is 0).
  std::int64_t segments_sent = 0;
  std::int64_t final_elements = 0;
  /// Per-level traffic of this rank's group-wise exchange.
  std::vector<exchange::ExchangeStats> level_stats;
};

/// Sorts the global data over the transport's group; works for any group
/// size and any k >= 2.
std::vector<double> MultilevelSampleSort(
    const std::shared_ptr<Transport>& world, std::vector<double> local,
    const MultilevelConfig& cfg = {}, MultilevelStats* stats = nullptr);

}  // namespace jsort
