// Distributed verification of sorting results, used by the tests, the
// examples and the benchmark harnesses:
//  * global sortedness (locally sorted + boundary chain check),
//  * permutation preservation (order-independent global fingerprint),
//  * balance (min/max local element counts).
#pragma once

#include <cstdint>
#include <span>

#include "rbc/rbc.hpp"

namespace jsort {

/// Order-independent fingerprint of a distributed multiset of doubles.
/// `hash_sum` is the wrapping sum of per-element mixed bit patterns:
/// order-independent but duplicate-sensitive (an xor would cancel pairs).
/// Equality intentionally ignores `sum`, which depends on floating-point
/// accumulation order; it is kept for diagnostics only.
struct Fingerprint {
  std::int64_t count = 0;
  std::uint64_t hash_sum = 0;
  double sum = 0.0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.count == b.count && a.hash_sum == b.hash_sum;
  }
};

/// Computes the global fingerprint of `local` over all ranks of `comm`
/// (collective; result valid on every rank).
Fingerprint GlobalFingerprint(std::span<const double> local,
                              const rbc::Comm& comm);

/// True iff the concatenation of all local arrays by rank is sorted
/// (collective; result valid on every rank). Empty local arrays allowed.
bool IsGloballySorted(std::span<const double> local, const rbc::Comm& comm);

/// Global minimum/maximum local element count (collective).
struct Balance {
  std::int64_t min_count = 0;
  std::int64_t max_count = 0;
};
Balance GlobalBalance(std::span<const double> local, const rbc::Comm& comm);

}  // namespace jsort
