// Distributed verification of sorting results, used by the tests, the
// examples and the benchmark harnesses:
//  * global sortedness (locally sorted + boundary chain check),
//  * permutation preservation (order-independent global fingerprint),
//  * balance (min/max local element counts),
// plus the query-result checkers (selection / top-k / quantile), which
// re-establish each answer from global reductions over the *original*
// input rather than trusting the kernel's own bookkeeping.
#pragma once

#include <cstdint>
#include <span>

#include "rbc/rbc.hpp"
#include "sort/transport.hpp"

namespace jsort {

/// Order-independent fingerprint of a distributed multiset of doubles.
/// `hash_sum` is the wrapping sum of per-element mixed bit patterns:
/// order-independent but duplicate-sensitive (an xor would cancel pairs).
/// Equality intentionally ignores `sum`, which depends on floating-point
/// accumulation order; it is kept for diagnostics only.
struct Fingerprint {
  std::int64_t count = 0;
  std::uint64_t hash_sum = 0;
  double sum = 0.0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.count == b.count && a.hash_sum == b.hash_sum;
  }
};

/// Computes the global fingerprint of `local` over all ranks of `comm`
/// (collective; result valid on every rank).
Fingerprint GlobalFingerprint(std::span<const double> local,
                              const rbc::Comm& comm);

/// True iff the concatenation of all local arrays by rank is sorted
/// (collective; result valid on every rank). Empty local arrays allowed.
bool IsGloballySorted(std::span<const double> local, const rbc::Comm& comm);

/// Global minimum/maximum local element count (collective).
struct Balance {
  std::int64_t min_count = 0;
  std::int64_t max_count = 0;
};
Balance GlobalBalance(std::span<const double> local, const rbc::Comm& comm);

// ---------------------------------------------------------------------------
// Query-result checkers. Collective over the transport group; every rank
// passes its slice of the ORIGINAL (pre-query) input and the verdict is
// identical on all ranks. The default tag matches
// jsort::query::kQueryVerifyTagBase.

/// True iff `value` is the k-th smallest (0-based) element of the
/// distributed multiset and [less, less_equal) is its exact global rank
/// interval: #\{x < value\} == less, #\{x <= value\} == less_equal, and
/// less <= k < less_equal.
bool VerifySelection(Transport& tr, std::span<const double> local,
                     std::int64_t k, double value, std::int64_t less,
                     std::int64_t less_equal, int tag = 7130);

/// True iff `topk` (significant on group rank `root` only, ignored
/// elsewhere) is exactly the min(k, n_total) globally smallest elements,
/// sorted ascending: the strictly-below-threshold multisets must agree
/// element-for-element (count + order-independent hash), and the
/// threshold copies must not exceed its global multiplicity.
bool VerifyTopK(Transport& tr, std::span<const double> local, std::int64_t k,
                std::span<const double> topk, int root, int tag = 7130);

/// True iff `value` answers quantile q within `rank_error_bound`: the
/// nearest-rank target of q must lie within rank_error_bound of value's
/// global rank interval [#\{x < value\}, #\{x <= value\}].
bool VerifyQuantile(Transport& tr, std::span<const double> local, double q,
                    double value, std::int64_t rank_error_bound,
                    int tag = 7130);

}  // namespace jsort
