// Umbrella header for the sorting applications.
#pragma once

#include "sort/assignment.hpp"
#include "sort/checks.hpp"
#include "sort/hypercube_qs.hpp"
#include "sort/jquick.hpp"
#include "sort/partition.hpp"
#include "sort/quickselect.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/sampling.hpp"
#include "sort/transport.hpp"
#include "sort/workload.hpp"
