#include "sort/jquick.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <limits>
#include <random>
#include <thread>

#include "sort/assignment.hpp"
#include "sort/exchange.hpp"
#include "sort/partition.hpp"
#include "sort/quickselect.hpp"

namespace jsort {
namespace {

// Exchange tags live in the user tag space. Each distributed level gets
// its own tag: a fast process may start level k+1 while a neighbour still
// receives level-k data, so level-k and level-k+1 exchange messages must
// never share an envelope. The (small, large) sides coalesce into one
// redistribution per level (jsort::exchange), so one tag per level
// suffices. The base-case pairwise exchange has a single tag: distinct
// partners disambiguate.
constexpr int kTagExchangeBase = 256;
constexpr int kTagBasePair = 128;

enum class Phase {
  kPivotBegin,
  kPivotReduce,   // random-element policy: waiting on the pair reduce
  kPivotGather,   // median policy: waiting on the sample gather
  kPivotBcast,    // waiting on the pivot broadcast
  kPartition,
  kScanWait,
  kTotalsWait,
  kExchange,
  kSplit,
  kDone,
};

/// A finished per-rank slice of the output, positioned by its absolute
/// slot offset in the globally sorted sequence.
struct Slice {
  std::int64_t key = 0;
  std::vector<double> data;
};

struct Task {
  std::shared_ptr<Transport> tr;
  std::vector<double> data;      // elements this rank owns in the task
  CapacityLayout layout;
  std::int64_t global_off = 0;   // absolute slot of the task's first element
  int level = 0;

  Phase phase = Phase::kPivotBegin;
  Poll poll;                     // pending nonblocking operation
  bool cmp_le = false;           // comparator of the current partition
  bool retried = false;          // degenerate-split retry performed

  // Pivot selection state.
  mpisim::PairDD cand{};
  std::vector<double> my_samples;
  std::vector<double> all_samples;  // root only
  double pivot = 0.0;

  // Partition / prefix-sum state.
  std::vector<double> small, large;
  std::int64_t counts[2] = {0, 0};
  std::int64_t incl[2] = {0, 0};
  std::int64_t totals[2] = {0, 0};

  // Exchange state: the redistribution (jsort::exchange) appends into
  // these sinks; `poll` reports its completion during Phase::kExchange.
  std::vector<double> recv_small, recv_large;

  int MyRank() const { return tr->Rank(); }
  std::int64_t MyCap() const { return layout.CapOf(MyRank()); }
  std::int64_t SliceKey() const {
    return global_off + layout.PrefixBefore(MyRank());
  }
  int CollTag() const { return 2 * level + (retried ? 1 : 0); }
  int ExchangeTag() const { return kTagExchangeBase + CollTag(); }
};

class Driver {
 public:
  Driver(std::shared_ptr<Transport> world, std::vector<double> local,
         const JQuickConfig& cfg, JQuickStats* stats)
      : cfg_(cfg), stats_(stats),
        rng_(cfg.seed ^ (0x9E3779B97F4A7C15ull *
                         (static_cast<std::uint64_t>(
                              mpisim::Ctx().world_rank) +
                          1))) {
    const std::int64_t quota = static_cast<std::int64_t>(local.size());
    auto root = std::make_unique<Task>();
    root->tr = std::move(world);
    root->data = std::move(local);
    const int p = root->tr->Size();
    root->layout = CapacityLayout{
        .p = p,
        .quota = quota,
        .cap_first = quota,
        .cap_last = quota,
    };
    if (p <= 2) {
      base_.push_back(std::move(root));
    } else {
      active_.push_back(std::move(root));
    }
  }

  std::vector<double> Run() {
    DistributedPhase();
    BaseCasePhase();
    return Assemble();
  }

 private:
  void DistributedPhase() {
    const auto deadline = std::chrono::steady_clock::now() +
                          mpisim::Ctx().runtime->options().deadlock_timeout;
    while (!active_.empty()) {
      bool progressed = false;
      for (std::size_t i = 0; i < active_.size();) {
        progressed |= Step(*active_[i]);
        if (active_[i]->phase == Phase::kDone) {
          active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (!progressed) {
        if (mpisim::Ctx().runtime->Aborted()) throw mpisim::AbortedError();
        if (std::chrono::steady_clock::now() > deadline) {
          throw mpisim::DeadlockError("JQuick: distributed phase stalled");
        }
        std::this_thread::yield();
      }
    }
  }

  /// Advances one task through as many phases as possible. Returns true if
  /// any progress was made.
  bool Step(Task& t) {
    bool progressed = false;
    for (;;) {
      switch (t.phase) {
        case Phase::kPivotBegin:
          BeginPivot(t);
          progressed = true;
          continue;
        case Phase::kPivotReduce:
          if (!t.poll()) return progressed;
          t.poll = t.tr->Ibcast(&t.cand, 1, Datatype::kPairDoubleDouble, 0,
                                t.CollTag());
          t.phase = Phase::kPivotBcast;
          progressed = true;
          continue;
        case Phase::kPivotGather:
          if (!t.poll()) return progressed;
          if (t.MyRank() == 0) {
            t.pivot = MedianOf(t.all_samples);
          }
          t.poll = t.tr->Ibcast(&t.pivot, 1, Datatype::kFloat64, 0,
                                t.CollTag());
          t.phase = Phase::kPivotBcast;
          progressed = true;
          continue;
        case Phase::kPivotBcast:
          if (!t.poll()) return progressed;
          if (cfg_.pivot == PivotPolicy::kRandomElement) {
            t.pivot = t.cand.second;
          }
          t.phase = Phase::kPartition;
          progressed = true;
          continue;
        case Phase::kPartition: {
          PartitionResult pr = Partition(t.data, t.pivot, t.cmp_le);
          t.small = std::move(pr.small);
          t.large = std::move(pr.large);
          t.counts[0] = static_cast<std::int64_t>(t.small.size());
          t.counts[1] = static_cast<std::int64_t>(t.large.size());
          t.poll = t.tr->Iscan(t.counts, t.incl, 2, Datatype::kInt64,
                               ReduceOp::kSum, t.CollTag());
          t.phase = Phase::kScanWait;
          progressed = true;
          continue;
        }
        case Phase::kScanWait: {
          if (!t.poll()) return progressed;
          const int last = t.layout.p - 1;
          if (t.MyRank() == last) {
            t.totals[0] = t.incl[0];
            t.totals[1] = t.incl[1];
          }
          t.poll = t.tr->Ibcast(t.totals, 2, Datatype::kInt64, last,
                                t.CollTag());
          t.phase = Phase::kTotalsWait;
          progressed = true;
          continue;
        }
        case Phase::kTotalsWait: {
          if (!t.poll()) return progressed;
          const std::int64_t total = t.layout.Total();
          if (t.totals[0] + t.totals[1] != total) {
            throw mpisim::Error("JQuick: internal: count totals mismatch");
          }
          const std::int64_t s = t.totals[0];
          if (s == 0 || s == total) {
            if (!t.retried) {
              // Degenerate split: retry once with the flipped comparator
              // (the duplicate-handling switch of [8]). If that is also
              // degenerate, every element equals the pivot.
              t.retried = true;
              t.cmp_le = !t.cmp_le;
              ReuniteData(t);
              t.phase = Phase::kPartition;
              progressed = true;
              continue;
            }
            ReuniteData(t);  // all elements equal: already sorted & balanced
            EmitSlice(t.SliceKey(), std::move(t.data));
            t.phase = Phase::kDone;
            return true;
          }
          t.phase = Phase::kExchange;
          StartExchange(t);
          progressed = true;
          continue;
        }
        case Phase::kExchange:
          if (!t.poll()) return progressed;
          t.phase = Phase::kSplit;
          progressed = true;
          continue;
        case Phase::kSplit:
          SplitTask(t);
          t.phase = Phase::kDone;
          return true;
        case Phase::kDone:
          return progressed;
      }
    }
  }

  void BeginPivot(Task& t) {
    if (cfg_.pivot == PivotPolicy::kRandomElement) {
      t.cand = ReservoirCandidate(t.data, rng_);
      t.poll = t.tr->Ireduce(&t.cand, &t.cand, 1,
                             Datatype::kPairDoubleDouble,
                             ReduceOp::kMaxPairFirst, 0, t.CollTag());
      t.phase = Phase::kPivotReduce;
      return;
    }
    // Median-of-samples: every rank contributes the same number of local
    // samples (with replacement); the root takes the median.
    const int p = t.layout.p;
    const int total =
        cfg_.samples.TotalSamples(p, t.layout.quota);
    const int per_rank = std::max(1, (total + p - 1) / p);
    t.my_samples.resize(static_cast<std::size_t>(per_rank));
    DrawSamples(t.data, per_rank, t.my_samples.data(), rng_);
    if (t.MyRank() == 0) {
      t.all_samples.resize(static_cast<std::size_t>(per_rank) * p);
    }
    t.poll = t.tr->Igather(t.my_samples.data(), per_rank, Datatype::kFloat64,
                           t.all_samples.data(), 0, t.CollTag());
    t.phase = Phase::kPivotGather;
  }

  /// Restores t.data = small ++ large (order irrelevant for sorting).
  static void ReuniteData(Task& t) {
    t.data = std::move(t.small);
    t.data.insert(t.data.end(), t.large.begin(), t.large.end());
    t.small.clear();
    t.large.clear();
  }

  /// Hands the (small, large) sides to the redistribution layer: one
  /// coalesced exchange per level covering both regions. The layer copies
  /// the payload out synchronously, so the partition buffers are released
  /// immediately; Phase::kExchange polls t.poll until the sinks are full.
  void StartExchange(Task& t) {
    const std::int64_t s_excl = t.incl[0] - t.counts[0];
    const std::int64_t l_excl = t.incl[1] - t.counts[1];
    const std::int64_t s_total = t.totals[0];
    const std::int64_t expect_small =
        OverlapWithRegion(t.layout, t.MyRank(), 0, s_total);
    const std::int64_t expect_large =
        OverlapWithRegion(t.layout, t.MyRank(), s_total, t.layout.Total());
    t.recv_small.reserve(static_cast<std::size_t>(expect_small));
    t.recv_large.reserve(static_cast<std::size_t>(expect_large));

    std::vector<exchange::Segment> segments(2);
    segments[0] = exchange::Segment{
        t.small.data(), static_cast<std::int64_t>(t.small.size()), s_excl,
        &t.recv_small, expect_small};
    segments[1] = exchange::Segment{
        t.large.data(), static_cast<std::int64_t>(t.large.size()),
        s_total + l_excl, &t.recv_large, expect_large};
    exchange::ExchangeStats es;
    t.poll = exchange::StartSegmentExchange(t.tr, t.layout,
                                            std::move(segments),
                                            t.ExchangeTag(),
                                            cfg_.exchange_mode, &es,
                                            cfg_.segment_bytes);
    if (stats_ != nullptr) {
      stats_->messages_sent += es.messages_sent;
      stats_->elements_sent += es.elements_sent;
      stats_->segments_sent += es.segments;
    }
    t.small.clear();
    t.small.shrink_to_fit();
    t.large.clear();
    t.large.shrink_to_fit();
    t.data.clear();
    t.data.shrink_to_fit();
  }

  void SplitTask(Task& t) {
    const std::int64_t s = t.totals[0];
    const int p = t.layout.p;
    const int rank = t.MyRank();
    const int left_last = t.layout.RankOfSlot(s - 1);
    const int right_first = t.layout.RankOfSlot(s);
    const bool in_left = t.layout.PrefixBefore(rank) < s;
    const bool in_right = t.layout.PrefixBefore(rank) + t.MyCap() > s;
    const bool janus = in_left && in_right;
    if (janus && stats_ != nullptr) stats_->janus_episodes += 1;

    CapacityLayout left_layout{
        .p = left_last + 1,
        .quota = t.layout.quota,
        .cap_first =
            left_last == 0 ? s : t.layout.cap_first,
        .cap_last = s - t.layout.PrefixBefore(left_last),
    };
    if (left_layout.p == 1) left_layout.cap_last = left_layout.cap_first;
    CapacityLayout right_layout{
        .p = p - right_first,
        .quota = t.layout.quota,
        .cap_first = t.layout.PrefixBefore(right_first) +
                     t.layout.CapOf(right_first) - s,
        .cap_last = right_first == p - 1
                        ? t.layout.PrefixBefore(right_first) +
                              t.layout.CapOf(right_first) - s
                        : t.layout.cap_last,
    };

    // Split schedule (Section VIII-C): a janus orders its two collective
    // group creations; alternating parity bounds creation cascades.
    bool left_first = true;
    if (janus && cfg_.schedule == SplitSchedule::kAlternating) {
      left_first = (rank % 2) == 0;
    }

    std::shared_ptr<Transport> left_tr, right_tr;
    auto make_left = [&] {
      if (in_left) left_tr = t.tr->Split(0, left_last);
    };
    auto make_right = [&] {
      if (in_right) right_tr = t.tr->Split(right_first, p - 1);
    };
    if (left_first) {
      make_left();
      make_right();
    } else {
      make_right();
      make_left();
    }

    if (in_left) {
      Enqueue(MakeChild(t, std::move(left_tr), std::move(t.recv_small),
                        left_layout, t.global_off));
    }
    if (in_right) {
      Enqueue(MakeChild(t, std::move(right_tr), std::move(t.recv_large),
                        right_layout, t.global_off + s));
    }
  }

  std::unique_ptr<Task> MakeChild(Task& parent, std::shared_ptr<Transport> tr,
                                  std::vector<double> data,
                                  const CapacityLayout& layout,
                                  std::int64_t global_off) {
    auto child = std::make_unique<Task>();
    child->tr = std::move(tr);
    child->data = std::move(data);
    child->layout = layout;
    child->global_off = global_off;
    child->level = parent.level + 1;
    child->cmp_le = ((child->level % 2) == 1);
    if (static_cast<std::int64_t>(child->data.size()) != child->MyCap()) {
      throw mpisim::Error("JQuick: internal: perfect balance violated");
    }
    if (stats_ != nullptr) {
      stats_->distributed_levels =
          std::max(stats_->distributed_levels, child->level);
    }
    return child;
  }

  void Enqueue(std::unique_ptr<Task> task) {
    if (task->layout.p <= 2) {
      base_.push_back(std::move(task));
    } else {
      active_.push_back(std::move(task));
    }
  }

  /// Second phase (Section VII): base cases, deferred so a janus never
  /// delays a larger subtask. All sends go out first (eager), then the
  /// receives are drained, so a process in two base cases cannot block its
  /// partners.
  void BaseCasePhase() {
    for (auto& t : base_) {
      if (t->layout.p == 2) {
        // The pair exchange honours the segment limit like every other
        // payload path: both sides know the counts (the capacities), so
        // sender and receiver walk the same segment ranges, sequenced by
        // per-envelope FIFO order on the pair tag.
        const auto n = static_cast<std::int64_t>(t->data.size());
        const std::int64_t segs = mpisim::AlltoallvSegmentsOf(
            n, sizeof(double), cfg_.segment_bytes);
        for (std::int64_t s = 0; s < segs; ++s) {
          const auto [at, len] = mpisim::AlltoallvSegmentRange(
              n, sizeof(double), cfg_.segment_bytes, s);
          t->tr->Send(t->data.data() + at, static_cast<int>(len),
                      Datatype::kFloat64, 1 - t->MyRank(), kTagBasePair);
        }
        if (stats_ != nullptr) {
          stats_->messages_sent += 1;
          stats_->elements_sent += n;
          stats_->segments_sent += segs;
        }
      }
    }
    for (auto& t : base_) {
      if (t->layout.p == 1) {
        if (stats_ != nullptr) stats_->base_tasks_1p += 1;
        std::sort(t->data.begin(), t->data.end());
        EmitSlice(t->SliceKey(), std::move(t->data));
        continue;
      }
      if (stats_ != nullptr) stats_->base_tasks_2p += 1;
      const int partner = 1 - t->MyRank();
      const std::int64_t partner_cap = t->layout.CapOf(partner);
      std::vector<double> merged = std::move(t->data);
      const std::size_t mine = merged.size();
      merged.resize(mine + static_cast<std::size_t>(partner_cap));
      const std::int64_t segs = mpisim::AlltoallvSegmentsOf(
          partner_cap, sizeof(double), cfg_.segment_bytes);
      for (std::int64_t s = 0; s < segs; ++s) {
        const auto [at, len] = mpisim::AlltoallvSegmentRange(
            partner_cap, sizeof(double), cfg_.segment_bytes, s);
        t->tr->Recv(merged.data() + mine + at, static_cast<int>(len),
                    Datatype::kFloat64, partner, kTagBasePair);
      }
      // Quickselect my share: rank 0 keeps the smallest cap_first
      // elements, rank 1 keeps the rest (Section VII).
      const std::int64_t k = t->layout.cap_first;
      QuickselectSmallest(merged, static_cast<std::size_t>(k),
                          cfg_.seed ^ 0xB5297A4Du);
      std::vector<double> kept;
      if (t->MyRank() == 0) {
        kept.assign(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        kept.assign(merged.begin() + static_cast<std::ptrdiff_t>(k), merged.end());
      }
      std::sort(kept.begin(), kept.end());
      EmitSlice(t->SliceKey(), std::move(kept));
    }
    base_.clear();
  }

  void EmitSlice(std::int64_t key, std::vector<double> data) {
    slices_.push_back(Slice{key, std::move(data)});
  }

  std::vector<double> Assemble() {
    std::sort(slices_.begin(), slices_.end(),
              [](const Slice& a, const Slice& b) { return a.key < b.key; });
    std::vector<double> out;
    for (Slice& s : slices_) {
      out.insert(out.end(), s.data.begin(), s.data.end());
    }
    return out;
  }

  JQuickConfig cfg_;
  JQuickStats* stats_;
  std::mt19937_64 rng_;
  std::vector<std::unique_ptr<Task>> active_;
  std::vector<std::unique_ptr<Task>> base_;
  std::vector<Slice> slices_;
};

}  // namespace

std::vector<double> JQuickSort(const std::shared_ptr<Transport>& world,
                               std::vector<double> local,
                               const JQuickConfig& cfg, JQuickStats* stats) {
  if (world == nullptr) throw mpisim::UsageError("JQuickSort: null transport");
  if (stats != nullptr) *stats = JQuickStats{};
  const std::size_t quota = local.size();
  Driver driver(world, std::move(local), cfg, stats);
  std::vector<double> out = driver.Run();
  if (out.size() != quota) {
    throw mpisim::Error("JQuick: internal: output size != quota");
  }
  return out;
}

std::vector<double> JQuickSortPadded(const std::shared_ptr<Transport>& world,
                                     std::vector<double> local,
                                     const JQuickConfig& cfg,
                                     JQuickStats* stats) {
  if (world == nullptr) throw mpisim::UsageError("JQuickSort: null transport");
  // Agree on the padded quota: the maximum local size over all ranks.
  std::int64_t mine = static_cast<std::int64_t>(local.size());
  std::int64_t quota = 0;
  {
    // Reduce+bcast via the transport's nonblocking primitives.
    Poll r = world->Ireduce(&mine, &quota, 1, Datatype::kInt64,
                            ReduceOp::kMax, 0, /*tag=*/96);
    while (!r()) std::this_thread::yield();
    Poll b = world->Ibcast(&quota, 1, Datatype::kInt64, 0, /*tag=*/97);
    while (!b()) std::this_thread::yield();
  }
  local.resize(static_cast<std::size_t>(quota),
               std::numeric_limits<double>::infinity());
  std::vector<double> out = JQuickSort(world, std::move(local), cfg, stats);
  while (!out.empty() &&
         out.back() == std::numeric_limits<double>::infinity()) {
    out.pop_back();
  }
  return out;
}

}  // namespace jsort
