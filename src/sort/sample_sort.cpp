#include "sort/sample_sort.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "sort/exchange.hpp"
#include "sort/partition.hpp"
#include "sort/sampling.hpp"

namespace jsort {
namespace {

constexpr int kTagBucket = 1024;
constexpr int kTagSplitter = 1025;

void WaitPoll(Poll& p) {
  while (!p()) std::this_thread::yield();
}

}  // namespace

std::vector<double> SampleSort(const std::shared_ptr<Transport>& world,
                               std::vector<double> local,
                               const SampleSortConfig& cfg,
                               SampleSortStats* stats) {
  if (world == nullptr) throw mpisim::UsageError("SampleSort: null transport");
  if (stats != nullptr) *stats = SampleSortStats{};
  Transport& tr = *world;
  const int p = tr.Size();
  const int rank = tr.Rank();
  if (p == 1) {
    std::sort(local.begin(), local.end());
    if (stats != nullptr) {
      stats->final_elements = static_cast<std::int64_t>(local.size());
    }
    return local;
  }
  std::mt19937_64 rng(cfg.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(mpisim::Ctx().world_rank) +
                        1)));

  // 1) Splitter selection: every rank contributes oversample*(p-1)/p + 1
  //    samples; the root sorts the sample and picks p-1 equidistant
  //    splitters.
  const int per_rank = std::max(1, cfg.oversample);
  std::vector<double> mine(static_cast<std::size_t>(per_rank));
  DrawSamples(local, per_rank, mine.data(), rng);
  std::vector<double> all;
  if (rank == 0) all.resize(static_cast<std::size_t>(per_rank) * p);
  Poll g = tr.Igather(mine.data(), per_rank, Datatype::kFloat64, all.data(),
                      0, kTagSplitter);
  WaitPoll(g);
  std::vector<double> splitters(static_cast<std::size_t>(p - 1));
  if (rank == 0) {
    std::sort(all.begin(), all.end());
    for (int i = 1; i < p; ++i) {
      splitters[static_cast<std::size_t>(i - 1)] =
          all[static_cast<std::size_t>(i) * all.size() / p];
    }
  }
  Poll b = tr.Ibcast(splitters.data(), p - 1, Datatype::kFloat64, 0,
                     kTagSplitter);
  WaitPoll(b);

  // 2) Local partition into p buckets with the branchless splitter-tree
  //    kernel (bucket-major flat layout, ready for the flat exchange).
  KWayBuckets buckets = PartitionKWay(local, splitters);
  local.clear();
  local.shrink_to_fit();

  // 3) All-to-all: bucket i to rank i over the redistribution layer's
  //    dense Alltoallv path. Empty buckets are exchanged too, so every
  //    rank pays exactly p-1 payload startups -- the p-1 startups of
  //    Section IV.
  exchange::ExchangeStats es;
  std::vector<double> out = exchange::ExchangeBuckets(
      tr, buckets.elements, buckets.offsets, kTagBucket, &es,
      cfg.segment_bytes, cfg.exchange_mode);
  buckets.elements.clear();
  if (stats != nullptr) {
    stats->messages_sent += es.messages_sent;
    stats->segments_sent += es.segments;
  }

  // 4) Local sort of the received bucket.
  std::sort(out.begin(), out.end());
  if (stats != nullptr) {
    stats->final_elements = static_cast<std::int64_t>(out.size());
  }
  return out;
}

}  // namespace jsort
