#include "sort/checks.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

namespace jsort {
namespace {

/// splitmix64-style bit mixer; applied to the raw bit pattern of each
/// element so that xor over all elements is order- and
/// distribution-independent.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t BitsOf(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Blocking allreduce over a Transport (Ireduce to rank 0 + Ibcast),
/// mirroring jsort::query's helper; the checkers run over Transport so
/// they verify on whichever backend produced the answer.
void TrWait(const Poll& poll) {
  while (!poll()) std::this_thread::yield();
}

void TrAllreduce(Transport& tr, const void* in, void* out, int count,
                 Datatype dt, ReduceOp op, int tag) {
  TrWait(tr.Ireduce(in, out, count, dt, op, 0, tag));
  TrWait(tr.Ibcast(out, count, dt, 0, tag + 1));
}

}  // namespace

Fingerprint GlobalFingerprint(std::span<const double> local,
                              const rbc::Comm& comm) {
  Fingerprint mine;
  mine.count = static_cast<std::int64_t>(local.size());
  for (double v : local) {
    mine.hash_sum += Mix(BitsOf(v));
    mine.sum += v;
  }
  Fingerprint global = mine;
  rbc::Reduce(&mine.count, &global.count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Reduce(&mine.hash_sum, &global.hash_sum, 1, rbc::Datatype::kUint64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Reduce(&mine.sum, &global.sum, 1, rbc::Datatype::kFloat64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Bcast(&global.count, 1, rbc::Datatype::kInt64, 0, comm);
  rbc::Bcast(&global.hash_sum, 1, rbc::Datatype::kUint64, 0, comm);
  rbc::Bcast(&global.sum, 1, rbc::Datatype::kFloat64, 0, comm);
  return global;
}

bool IsGloballySorted(std::span<const double> local, const rbc::Comm& comm) {
  const std::uint8_t locally_sorted =
      std::is_sorted(local.begin(), local.end()) ? 1 : 0;
  // Per-rank summary: {has_elements, first, last, locally_sorted}.
  const double summary[4] = {
      local.empty() ? 0.0 : 1.0,
      local.empty() ? 0.0 : local.front(),
      local.empty() ? 0.0 : local.back(),
      static_cast<double>(locally_sorted),
  };
  std::vector<double> all;
  if (comm.Rank() == 0) {
    all.resize(static_cast<std::size_t>(comm.Size()) * 4);
  }
  rbc::Gather(summary, 4, rbc::Datatype::kFloat64, all.data(), 0, comm);
  std::uint8_t ok = 1;
  if (comm.Rank() == 0) {
    bool have_prev = false;
    double prev_last = 0.0;
    for (int r = 0; r < comm.Size(); ++r) {
      const double* s = all.data() + static_cast<std::size_t>(r) * 4;
      if (s[3] == 0.0) ok = 0;
      if (s[0] == 0.0) continue;  // empty rank
      if (have_prev && prev_last > s[1]) ok = 0;
      prev_last = s[2];
      have_prev = true;
    }
  }
  rbc::Bcast(&ok, 1, rbc::Datatype::kByte, 0, comm);
  return ok != 0;
}

Balance GlobalBalance(std::span<const double> local, const rbc::Comm& comm) {
  const std::int64_t count = static_cast<std::int64_t>(local.size());
  Balance b{count, count};
  rbc::Reduce(&count, &b.min_count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kMin, 0, comm);
  rbc::Reduce(&count, &b.max_count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kMax, 0, comm);
  rbc::Bcast(&b.min_count, 1, rbc::Datatype::kInt64, 0, comm);
  rbc::Bcast(&b.max_count, 1, rbc::Datatype::kInt64, 0, comm);
  return b;
}

bool VerifySelection(Transport& tr, std::span<const double> local,
                     std::int64_t k, double value, std::int64_t less,
                     std::int64_t less_equal, int tag) {
  std::int64_t mine[3] = {0, 0, static_cast<std::int64_t>(local.size())};
  for (const double x : local) {
    if (x < value) ++mine[0];
    if (x <= value) ++mine[1];
  }
  std::int64_t global[3] = {0, 0, 0};
  TrAllreduce(tr, mine, global, 3, Datatype::kInt64, ReduceOp::kSum, tag);
  // Identical global inputs on every rank, so no verdict broadcast needed.
  return global[0] == less && global[1] == less_equal && less <= k &&
         k < less_equal && less_equal <= global[2];
}

bool VerifyTopK(Transport& tr, std::span<const double> local, std::int64_t k,
                std::span<const double> topk, int root, int tag) {
  const std::int64_t n_local = static_cast<std::int64_t>(local.size());
  std::int64_t n_total = 0;
  TrAllreduce(tr, &n_local, &n_total, 1, Datatype::kInt64, ReduceOp::kSum,
              tag);
  const std::int64_t expect = std::min(k < 0 ? 0 : k, n_total);

  // The root publishes {m, sorted?, threshold}; a wrong size or ordering
  // fails immediately on every rank.
  double head[3] = {0.0, 0.0, 0.0};
  if (tr.Rank() == root) {
    head[0] = static_cast<double>(topk.size());
    head[1] = std::is_sorted(topk.begin(), topk.end()) ? 1.0 : 0.0;
    head[2] = topk.empty() ? 0.0 : topk.back();
  }
  TrWait(tr.Ibcast(head, 3, Datatype::kFloat64, root, tag + 2));
  const auto m = static_cast<std::int64_t>(head[0]);
  if (m != expect || head[1] == 0.0) return false;
  if (m == 0) return true;
  const double threshold = head[2];

  // The strictly-below-threshold part of the input must match the
  // strictly-below part of topk element for element (count + the same
  // order-independent hash the sort fingerprint uses); the remaining
  // slots must be threshold copies within its global multiplicity.
  std::int64_t counts[2] = {0, 0};  // {#< threshold, #== threshold}
  std::uint64_t hash = 0;
  for (const double x : local) {
    if (x < threshold) {
      ++counts[0];
      hash += Mix(BitsOf(x));
    } else if (x == threshold) {
      ++counts[1];
    }
  }
  std::int64_t g_counts[2] = {0, 0};
  std::uint64_t g_hash = 0;
  TrAllreduce(tr, counts, g_counts, 2, Datatype::kInt64, ReduceOp::kSum, tag);
  TrAllreduce(tr, &hash, &g_hash, 1, Datatype::kUint64, ReduceOp::kSum, tag);

  std::uint8_t ok = 1;
  if (tr.Rank() == root) {
    std::int64_t t_below = 0;
    std::uint64_t t_hash = 0;
    for (const double y : topk) {
      if (y < threshold) {
        ++t_below;
        t_hash += Mix(BitsOf(y));
      }
    }
    const std::int64_t t_ties = m - t_below;
    ok = (g_counts[0] == t_below && g_hash == t_hash && t_ties >= 1 &&
          t_ties <= g_counts[1])
             ? 1
             : 0;
  }
  TrWait(tr.Ibcast(&ok, 1, Datatype::kByte, root, tag + 3));
  return ok != 0;
}

bool VerifyQuantile(Transport& tr, std::span<const double> local, double q,
                    double value, std::int64_t rank_error_bound, int tag) {
  std::int64_t mine[3] = {0, 0, static_cast<std::int64_t>(local.size())};
  for (const double x : local) {
    if (x < value) ++mine[0];
    if (x <= value) ++mine[1];
  }
  std::int64_t global[3] = {0, 0, 0};
  TrAllreduce(tr, mine, global, 3, Datatype::kInt64, ReduceOp::kSum, tag);
  const std::int64_t n = global[2];
  if (n == 0) return true;  // nothing to answer; any value is as good
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const auto target = static_cast<std::int64_t>(
      std::llround(clamped * static_cast<double>(n - 1)));
  // `value` may be interpolated (not a data element); its plausible rank
  // interval is [#< value, #<= value]. The nearest-rank target must fall
  // within the declared error bound of that interval.
  return target + rank_error_bound >= global[0] &&
         target <= global[1] + rank_error_bound;
}

}  // namespace jsort
