#include "sort/checks.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace jsort {
namespace {

/// splitmix64-style bit mixer; applied to the raw bit pattern of each
/// element so that xor over all elements is order- and
/// distribution-independent.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t BitsOf(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

}  // namespace

Fingerprint GlobalFingerprint(std::span<const double> local,
                              const rbc::Comm& comm) {
  Fingerprint mine;
  mine.count = static_cast<std::int64_t>(local.size());
  for (double v : local) {
    mine.hash_sum += Mix(BitsOf(v));
    mine.sum += v;
  }
  Fingerprint global = mine;
  rbc::Reduce(&mine.count, &global.count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Reduce(&mine.hash_sum, &global.hash_sum, 1, rbc::Datatype::kUint64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Reduce(&mine.sum, &global.sum, 1, rbc::Datatype::kFloat64,
              rbc::ReduceOp::kSum, 0, comm);
  rbc::Bcast(&global.count, 1, rbc::Datatype::kInt64, 0, comm);
  rbc::Bcast(&global.hash_sum, 1, rbc::Datatype::kUint64, 0, comm);
  rbc::Bcast(&global.sum, 1, rbc::Datatype::kFloat64, 0, comm);
  return global;
}

bool IsGloballySorted(std::span<const double> local, const rbc::Comm& comm) {
  const std::uint8_t locally_sorted =
      std::is_sorted(local.begin(), local.end()) ? 1 : 0;
  // Per-rank summary: {has_elements, first, last, locally_sorted}.
  const double summary[4] = {
      local.empty() ? 0.0 : 1.0,
      local.empty() ? 0.0 : local.front(),
      local.empty() ? 0.0 : local.back(),
      static_cast<double>(locally_sorted),
  };
  std::vector<double> all;
  if (comm.Rank() == 0) {
    all.resize(static_cast<std::size_t>(comm.Size()) * 4);
  }
  rbc::Gather(summary, 4, rbc::Datatype::kFloat64, all.data(), 0, comm);
  std::uint8_t ok = 1;
  if (comm.Rank() == 0) {
    bool have_prev = false;
    double prev_last = 0.0;
    for (int r = 0; r < comm.Size(); ++r) {
      const double* s = all.data() + static_cast<std::size_t>(r) * 4;
      if (s[3] == 0.0) ok = 0;
      if (s[0] == 0.0) continue;  // empty rank
      if (have_prev && prev_last > s[1]) ok = 0;
      prev_last = s[2];
      have_prev = true;
    }
  }
  rbc::Bcast(&ok, 1, rbc::Datatype::kByte, 0, comm);
  return ok != 0;
}

Balance GlobalBalance(std::span<const double> local, const rbc::Comm& comm) {
  const std::int64_t count = static_cast<std::int64_t>(local.size());
  Balance b{count, count};
  rbc::Reduce(&count, &b.min_count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kMin, 0, comm);
  rbc::Reduce(&count, &b.max_count, 1, rbc::Datatype::kInt64,
              rbc::ReduceOp::kMax, 0, comm);
  rbc::Bcast(&b.min_count, 1, rbc::Datatype::kInt64, 0, comm);
  rbc::Bcast(&b.max_count, 1, rbc::Datatype::kInt64, 0, comm);
  return b;
}

}  // namespace jsort
