#include "sort/assignment.hpp"

#include <algorithm>

#include "mpisim/error.hpp"

namespace jsort {

std::int64_t CapacityLayout::CapOf(int i) const {
  if (i < 0 || i >= p) throw mpisim::UsageError("CapacityLayout: bad rank");
  if (p == 1) return cap_first;
  if (i == 0) return cap_first;
  if (i == p - 1) return cap_last;
  return quota;
}

std::int64_t CapacityLayout::PrefixBefore(int i) const {
  if (i < 0 || i > p) throw mpisim::UsageError("CapacityLayout: bad rank");
  if (i == 0) return 0;
  if (p == 1) return cap_first;
  std::int64_t s = cap_first + static_cast<std::int64_t>(i - 1) * quota;
  if (i == p) s += cap_last - quota;  // the last rank deviates from quota
  return s;
}

std::int64_t CapacityLayout::Total() const { return PrefixBefore(p); }

int CapacityLayout::RankOfSlot(std::int64_t slot) const {
  if (slot < 0 || slot >= Total()) {
    throw mpisim::UsageError("CapacityLayout: slot out of range");
  }
  if (p == 1 || slot < cap_first) return 0;
  if (p == 2) return 1;
  // Interior ranks have uniform quota.
  const int i = 1 + static_cast<int>((slot - cap_first) / quota);
  return std::min(i, p - 1);
}

bool CapacityLayout::Valid() const {
  if (p <= 0) return false;
  if (p == 1) return cap_first == cap_last && cap_first >= 0;
  if (cap_first < 0 || cap_last < 0) return false;
  if (cap_first > quota || cap_last > quota) return false;
  if (p > 2 && quota <= 0) return false;
  return true;
}

std::vector<Chunk> AssignChunks(const CapacityLayout& layout,
                                std::int64_t slot_begin,
                                std::int64_t slot_end) {
  std::vector<Chunk> chunks;
  if (slot_begin >= slot_end) return chunks;
  std::int64_t slot = slot_begin;
  int target = layout.RankOfSlot(slot);
  while (slot < slot_end) {
    const std::int64_t target_end =
        layout.PrefixBefore(target) + layout.CapOf(target);
    const std::int64_t take = std::min(slot_end, target_end) - slot;
    if (take > 0) chunks.push_back(Chunk{target, take});
    slot += take;
    ++target;
  }
  return chunks;
}

std::int64_t OverlapWithRegion(const CapacityLayout& layout, int my_rank,
                               std::int64_t region_begin,
                               std::int64_t region_end) {
  const std::int64_t a = layout.PrefixBefore(my_rank);
  const std::int64_t b = a + layout.CapOf(my_rank);
  return std::max<std::int64_t>(
      0, std::min(b, region_end) - std::max(a, region_begin));
}

}  // namespace jsort
