#include "sort/hypercube_qs.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "sort/partition.hpp"

namespace jsort {
namespace {

constexpr int kTagPairExchange = 512;

void WaitPoll(Poll& p) {
  while (!p()) std::this_thread::yield();
}

/// Group-wide pivot: weighted-reservoir random element or
/// median-of-samples, via reduce/gather + bcast (blocking here -- the
/// hypercube baseline has no janus processes, every process is in exactly
/// one group).
double PickPivot(Transport& tr, const std::vector<double>& data,
                 const HypercubeConfig& cfg, std::mt19937_64& rng,
                 int level) {
  const int tag = level;
  if (cfg.pivot == PivotPolicy::kRandomElement) {
    mpisim::PairDD cand = ReservoirCandidate(data, rng);
    Poll r = tr.Ireduce(&cand, &cand, 1, Datatype::kPairDoubleDouble,
                        ReduceOp::kMaxPairFirst, 0, tag);
    WaitPoll(r);
    Poll b = tr.Ibcast(&cand, 1, Datatype::kPairDoubleDouble, 0, tag);
    WaitPoll(b);
    return cand.second;
  }
  const int p = tr.Size();
  const int total = cfg.samples.TotalSamples(p, 1);
  const int per_rank = std::max(1, (total + p - 1) / p);
  std::vector<double> mine(static_cast<std::size_t>(per_rank));
  DrawSamples(data, per_rank, mine.data(), rng);
  std::vector<double> all;
  if (tr.Rank() == 0) all.resize(static_cast<std::size_t>(per_rank) * p);
  Poll g = tr.Igather(mine.data(), per_rank, Datatype::kFloat64, all.data(),
                      0, tag);
  WaitPoll(g);
  double pivot = 0.0;
  if (tr.Rank() == 0) pivot = MedianOf(all);
  Poll b = tr.Ibcast(&pivot, 1, Datatype::kFloat64, 0, tag);
  WaitPoll(b);
  return pivot;
}

}  // namespace

std::vector<double> HypercubeQuicksort(
    const std::shared_ptr<Transport>& world, std::vector<double> local,
    const HypercubeConfig& cfg, HypercubeStats* stats) {
  if (world == nullptr) {
    throw mpisim::UsageError("HypercubeQuicksort: null transport");
  }
  if ((world->Size() & (world->Size() - 1)) != 0) {
    throw mpisim::UsageError(
        "HypercubeQuicksort: process count must be a power of two");
  }
  if (stats != nullptr) *stats = HypercubeStats{};
  std::mt19937_64 rng(cfg.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(mpisim::Ctx().world_rank) +
                        1)));

  std::shared_ptr<Transport> tr = world;
  int level = 0;
  while (tr->Size() > 1) {
    const int p = tr->Size();
    const int rank = tr->Rank();
    const int half = p / 2;
    const bool low = rank < half;
    const double pivot = PickPivot(*tr, local, cfg, rng, level);
    // Alternate the comparator like JQuick to split duplicate runs.
    const std::size_t cut =
        PartitionInPlace(local, pivot, /*less_equal=*/(level % 2) == 1);

    // Exchange across the hypercube dimension: the low partner keeps the
    // small half and receives the partner's small half, and vice versa.
    const int partner = low ? rank + half : rank - half;
    const double* send_ptr = low ? local.data() + cut : local.data();
    const std::size_t send_n = low ? local.size() - cut : cut;
    tr->Send(send_ptr, static_cast<int>(send_n), Datatype::kFloat64, partner,
             kTagPairExchange + level);
    Status st;
    bool got = false;
    while (!got) {
      got = tr->IprobeAny(kTagPairExchange + level, &st);
      if (!got) std::this_thread::yield();
    }
    const int incoming = st.Count(Datatype::kFloat64);
    std::vector<double> next;
    next.reserve((low ? cut : local.size() - cut) +
                 static_cast<std::size_t>(incoming));
    if (low) {
      next.assign(local.begin(), local.begin() + static_cast<std::ptrdiff_t>(cut));
    } else {
      next.assign(local.begin() + static_cast<std::ptrdiff_t>(cut), local.end());
    }
    const std::size_t old = next.size();
    next.resize(old + static_cast<std::size_t>(incoming));
    tr->Recv(next.data() + old, incoming, Datatype::kFloat64, partner,
             kTagPairExchange + level);
    local = std::move(next);

    tr = low ? tr->Split(0, half - 1) : tr->Split(half, p - 1);
    ++level;
  }
  std::sort(local.begin(), local.end());
  if (stats != nullptr) {
    stats->levels = level;
    stats->final_elements = static_cast<std::int64_t>(local.size());
  }
  return local;
}

}  // namespace jsort
