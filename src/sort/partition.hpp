// Local two-way partitioning with duplicate handling.
//
// JQuick handles duplicate keys by "carefully switching between the
// compare functions '<' and '<='" (Section VIII-A, citing [8]): on
// alternating recursion levels, elements equal to the pivot are counted as
// small or as large, which splits runs of duplicates across both sides.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace jsort {

/// Result of a two-way partition: elements routed left/right of the pivot.
struct PartitionResult {
  std::vector<double> small;
  std::vector<double> large;
};

/// Partitions `data` by `pivot`. With less_equal == false, small =
/// {x | x < pivot}; with less_equal == true, small = {x | x <= pivot}.
/// Stable within each side (irrelevant for sorting, convenient for tests).
PartitionResult Partition(std::span<const double> data, double pivot,
                          bool less_equal);

/// In-place variant: reorders `data` so the small side occupies the prefix
/// and returns its length.
std::size_t PartitionInPlace(std::span<double> data, double pivot,
                             bool less_equal);

}  // namespace jsort
