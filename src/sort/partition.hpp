// Local partition kernels.
//
// Two-way partitioning with duplicate handling: JQuick handles duplicate
// keys by "carefully switching between the compare functions '<' and '<='"
// (Section VIII-A, citing [8]): on alternating recursion levels, elements
// equal to the pivot are counted as small or as large, which splits runs
// of duplicates across both sides.
//
// k-way partitioning for the sample sorters: a branchless splitter-tree
// classification (the super-scalar sample sort technique of Sanders &
// Winkel) replacing per-element binary search + per-bucket push_back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace jsort {

/// Result of a two-way partition: elements routed left/right of the pivot.
struct PartitionResult {
  std::vector<double> small;
  std::vector<double> large;
};

/// Partitions `data` by `pivot`. With less_equal == false, small =
/// {x | x < pivot}; with less_equal == true, small = {x | x <= pivot}.
/// Stable within each side (irrelevant for sorting, convenient for tests).
PartitionResult Partition(std::span<const double> data, double pivot,
                          bool less_equal);

/// In-place variant: reorders `data` so the small side occupies the prefix
/// and returns its length.
std::size_t PartitionInPlace(std::span<double> data, double pivot,
                             bool less_equal);

/// Result of a k-way partition: the elements reordered bucket-major into
/// one flat allocation. Bucket b holds the elements x with exactly b
/// splitters <= x (upper_bound semantics: ties go right), each bucket
/// stable in input order.
struct KWayBuckets {
  std::vector<double> elements;         // bucket-major
  std::vector<std::int64_t> offsets;    // k+1 bucket boundaries

  int BucketCount() const { return static_cast<int>(offsets.size()) - 1; }
  std::int64_t Count(int b) const {
    return offsets[static_cast<std::size_t>(b) + 1] -
           offsets[static_cast<std::size_t>(b)];
  }
  std::span<const double> Bucket(int b) const {
    return {elements.data() + offsets[static_cast<std::size_t>(b)],
            static_cast<std::size_t>(Count(b))};
  }
};

/// Classifies `data` against the sorted `splitters` (k-1 splitters, k
/// buckets) with a branchless implicit search tree: each element descends
/// the complete binary tree over the splitters in log2(k) comparison->
/// integer steps (no data-dependent branches), a count pass sizes the
/// buckets, and a placement pass writes each element once into the single
/// flat allocation. Replaces the per-element std::upper_bound +
/// per-bucket push_back loop of the sample sorters.
KWayBuckets PartitionKWay(std::span<const double> data,
                          std::span<const double> splitters);

}  // namespace jsort
