// Data-redistribution layer shared by the sorting algorithms.
//
// Every distributed sorter ends a level the same way: each rank holds runs
// of elements whose destinations are defined by a global slot interval
// (jquick) or by explicit per-destination buckets (sample sort), and the
// data must move so that every rank ends up with exactly its share. This
// layer factors that step out of the sorters and routes it over the
// jsort::Transport abstraction, so the same code runs on RBC, native-MPI
// and Icomm backends.
//
// Two delivery paths are provided:
//  * the dense Alltoallv path -- a counts exchange followed by a payload
//    Transport::Ialltoallv. Predictable p-1 message rounds, right when
//    most destinations receive something (single-level sample sort);
//  * the coalesced path for skewed partitions -- when each rank sends to
//    only a few destinations (jquick's greedy chunk assignment spans O(1)
//    ranks per level), the dense counts exchange would dominate. Instead,
//    all segments destined to one rank ship as a single self-describing
//    message ([int64 counts[k]][payload]), and receivers drain
//    membership-filtered probes until their precomputed expectations are
//    met. One startup per non-empty destination, zero metadata rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sort/assignment.hpp"
#include "sort/transport.hpp"

namespace jsort {
namespace exchange {

/// Per-rank traffic accounting of one redistribution. Counts payload
/// messages only; the dense path's metadata (counts) round is excluded so
/// the numbers stay comparable across paths.
struct ExchangeStats {
  std::int64_t messages_sent = 0;
  std::int64_t elements_sent = 0;
};

/// Delivery path selection.
enum class Mode {
  kAlltoallv,  // dense: counts exchange + Transport::Ialltoallv
  kCoalesced,  // sparse: one self-describing message per destination
  kAuto,       // kCoalesced when few destinations are non-empty, else dense
};

/// Exclusive prefix sum of per-rank element counts over the transport --
/// the interval computation that turns "I hold n elements" into "my
/// elements occupy global slots [result, result + n)". Blocking.
std::int64_t ExscanCount(Transport& tr, std::int64_t mine, int tag);

/// Sender-side plan of a slot-interval redistribution: per-destination
/// counts and displacements (elements) for the caller's run occupying
/// slots [slot_begin, slot_begin + n) of `layout`. Purely local O(spanned
/// ranks) arithmetic over the greedy chunk assignment.
struct SendPlan {
  std::vector<int> counts;  // per destination rank
  std::vector<int> displs;  // prefix sums of counts
};
SendPlan PlanFromInterval(const CapacityLayout& layout,
                          std::int64_t slot_begin, std::int64_t n, int p);

/// Blocking bucket redistribution (single-level sample sort): bucket[i]
/// goes to rank i, every rank returns the concatenation of what it
/// received, ordered by source rank. Dense path. `stats`, if non-null, is
/// incremented by this call's payload traffic (p-1 messages).
std::vector<double> ExchangeBuckets(
    Transport& tr, const std::vector<std::vector<double>>& buckets, int tag,
    ExchangeStats* stats = nullptr);

/// One logically-contiguous run of elements to redistribute, plus where
/// its incoming counterpart accumulates.
struct Segment {
  const double* data = nullptr;   // contiguous elements (may be null if 0)
  std::int64_t count = 0;         // number of elements
  std::int64_t slot_begin = 0;    // absolute slot of data[0] in the layout
  std::vector<double>* sink = nullptr;  // received elements are appended
  std::int64_t expect = 0;        // elements this rank receives (overlap)
};

/// Starts a nonblocking redistribution of `segments` onto `layout` over
/// the transport. All segments coalesce into one exchange regardless of
/// how many there are: the dense path runs one counts round plus one
/// payload Alltoallv; the coalesced path ships one combined message per
/// non-empty destination. Self-destined elements bypass the transport.
///
/// The segment data is copied out before this returns, so callers may
/// free their buffers immediately; sinks must stay alive (and must not be
/// resized by the caller) until the returned Poll reports completion.
/// `stats`, if non-null, is incremented synchronously at start time.
Poll StartSegmentExchange(const std::shared_ptr<Transport>& tr,
                          const CapacityLayout& layout,
                          std::vector<Segment> segments, int tag,
                          Mode mode = Mode::kAuto,
                          ExchangeStats* stats = nullptr);

}  // namespace exchange
}  // namespace jsort
