// Data-redistribution layer shared by the sorting algorithms.
//
// Every distributed sorter ends a level the same way: each rank holds runs
// of elements whose destinations are defined by a global slot interval
// (jquick) or by explicit per-destination buckets (sample sort), and the
// data must move so that every rank ends up with exactly its share. This
// layer factors that step out of the sorters and routes it over the
// jsort::Transport abstraction, so the same code runs on RBC, native-MPI
// and Icomm backends.
//
// Three delivery paths are provided:
//  * the dense Alltoallv path -- a counts exchange followed by a payload
//    Transport::Ialltoallv. Predictable p-1 message rounds, right when
//    most destinations receive something (single-level sample sort);
//  * the coalesced path for skewed partitions -- when each rank sends to
//    only a few destinations (jquick's greedy chunk assignment spans O(1)
//    ranks per level), the dense counts exchange would dominate. Instead,
//    all segments destined to one rank ship as a single self-describing
//    message ([int64 counts[k]][payload]), and receivers drain
//    membership-filtered probes until their precomputed expectations are
//    met. One startup per non-empty destination, zero metadata rounds;
//  * the sparse path -- the same self-describing one-message-per-non-empty-
//    destination shipping, but delivered over the transport's sparse
//    collective (Transport::IsparseAlltoallv), whose two-lightweight-
//    barrier termination detection replaces the coalesced path's
//    expectation-driven drain. One startup per non-empty destination plus
//    O(log p) barrier tokens; the only sparse option when receive counts
//    are unknown (ExchangeGroupwise), and the robust choice at scale.
//
// kAuto resolves among the three from globally shared quantities only (the
// decision must be identical on every rank): the non-empty-destination
// fraction, estimated as f = min(4k, p-1) / (p-1) for a segment exchange
// (a segment of an interval redistribution spans at most ~4 ranks, so k
// segments reach at most 4k peers) and as out.size() / (p-1) for a
// group-wise exchange. f >= 1/2 picks the dense path (most peers are hit
// anyway, and the pairwise Alltoallv schedule avoids contention). Below
// that the exchange is skewed and a sparse-style path wins; which one
// depends on whether receive expectations exist: segment exchanges know
// them from the layout arithmetic, so they take the coalesced path (its
// expectation-driven termination adds zero messages), while group-wise
// exchanges cannot know their receive counts and take the sparse path
// (barrier-based termination, O(log p) tokens).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sort/assignment.hpp"
#include "sort/transport.hpp"

namespace jsort {
namespace exchange {

/// Default large-message segment limit (bytes) of the sorter configs
/// (JQuickConfig / SampleSortConfig / MultilevelConfig). Measured with
/// bench_sensitivity's segment_crossover sweep on the virtual cost model
/// (p=16, n/p=2^15): 64 KiB is where segmentation stops costing the dense
/// Alltoallv path (its per-peer blocks pipeline across the rbc rounds, so
/// vtime stays within 0.5% of unsegmented) while the skewed jquick
/// exchanges already gain ~2%, and smaller limits (4..16 KiB) tax one or
/// both paths with per-chunk startups. Messages below the limit are
/// unaffected; above it, memory per in-flight message stays bounded.
inline constexpr std::int64_t kDefaultSegmentBytes = 65536;

/// Per-rank traffic accounting of one redistribution. Counts payload
/// messages only; the dense path's metadata (counts) round is excluded so
/// the numbers stay comparable across paths.
struct ExchangeStats {
  /// Logical payload messages: one per (destination, exchange) the path
  /// transmits, regardless of segmentation.
  std::int64_t messages_sent = 0;
  std::int64_t elements_sent = 0;
  /// Wire-level payload messages after large-message segmentation: every
  /// logical message counts its segments/chunks (== messages_sent when no
  /// segment limit applies). Matches the backend arithmetic
  /// (mpisim::AlltoallvSegmentsOf / SparseChunksOf) exactly, so tests can
  /// reconcile this against the substrate's measured message counters.
  /// The hierarchical path reports its phase messages here (chunking
  /// excluded; see the per-level counters below).
  std::int64_t segments = 0;
  /// Per-level traffic of the hierarchical path (Mode::kHierarchical /
  /// kAuto on a two-level cost model): payload messages and bytes of the
  /// intra-node phases (coalescing + local scatter) and of the
  /// leader-to-leader inter-node phase. Zero on every flat path.
  std::int64_t intra_messages = 0;
  std::int64_t intra_bytes = 0;
  std::int64_t inter_messages = 0;
  std::int64_t inter_bytes = 0;
};

/// Delivery path selection.
enum class Mode {
  kAlltoallv,  // dense: counts exchange + Transport::Ialltoallv
  kCoalesced,  // skewed: one self-describing message per destination,
               // expectation-terminated probe drain
  kSparse,     // skewed: one message per destination over the transport's
               // sparse collective (barrier-terminated, no expectations)
  kHierarchical,  // node-aware: per-destination traffic coalesces on each
                  // node, crosses the network once leader-to-leader, and
                  // is scattered locally (topo/hier_exchange.hpp); byte-
                  // identical results to the flat paths. Collective and
                  // blocking at start. Degrades gracefully on a flat or
                  // single-node topology (the phases collapse to the
                  // intra case).
  kAuto,       // On a two-level cost model (CostModel::Hierarchical())
               // with more than one node in the group: kHierarchical --
               // matching the exchange structure to the machine beats
               // every flat path on inter-node traffic. Otherwise:
               // dense / coalesced / sparse by the estimated non-empty-
               // destination fraction (see the header comment); with a
               // segment limit, flips coalesced -> sparse exactly when a
               // single per-destination message could exceed
               // segment_bytes (the sparse backend chunks its payloads,
               // the coalesced eager sends cannot)
};

/// Exclusive prefix sum of per-rank element counts over the transport --
/// the interval computation that turns "I hold n elements" into "my
/// elements occupy global slots [result, result + n)". Blocking.
std::int64_t ExscanCount(Transport& tr, std::int64_t mine, int tag);

/// Sender-side plan of a slot-interval redistribution: per-destination
/// counts and displacements (elements) for the caller's run occupying
/// slots [slot_begin, slot_begin + n) of `layout`. Purely local O(spanned
/// ranks) arithmetic over the greedy chunk assignment.
struct SendPlan {
  std::vector<int> counts;  // per destination rank
  std::vector<int> displs;  // prefix sums of counts
};
SendPlan PlanFromInterval(const CapacityLayout& layout,
                          std::int64_t slot_begin, std::int64_t n, int p);

/// Blocking bucket redistribution (single-level sample sort): bucket[i]
/// goes to rank i, every rank returns the concatenation of what it
/// received, ordered by source rank. `stats`, if non-null, is incremented
/// by this call's payload traffic (p-1 messages on the dense path).
/// `segment_bytes` > 0 pipelines each per-peer payload block in segments
/// of at most that many bytes (the large-message regime). Every bucket is
/// non-empty-or-not per rank, so only two deliveries make sense here:
/// kHierarchical runs the node-aware engine (skipping the dense counts
/// round entirely -- its messages are self-describing), kAuto picks it
/// exactly when the cost model is two-level and the group spans nodes,
/// and every other mode delivers densely.
std::vector<double> ExchangeBuckets(
    Transport& tr, const std::vector<std::vector<double>>& buckets, int tag,
    ExchangeStats* stats = nullptr, std::int64_t segment_bytes = 0,
    Mode mode = Mode::kAuto);

/// Flat-bucket variant: bucket i occupies elements [offsets[i],
/// offsets[i+1]) of `elements` (offsets has Size()+1 entries) -- the
/// layout PartitionKWay produces, exchanged without per-bucket copies.
std::vector<double> ExchangeBuckets(Transport& tr,
                                    std::span<const double> elements,
                                    std::span<const std::int64_t> offsets,
                                    int tag, ExchangeStats* stats = nullptr,
                                    std::int64_t segment_bytes = 0,
                                    Mode mode = Mode::kAuto);

/// One outgoing payload of a group-wise (AMS-style) exchange: `count`
/// elements to group rank `dest`. Entries may be empty; they are not
/// transmitted.
struct Outgoing {
  int dest = 0;
  const double* data = nullptr;
  std::int64_t count = 0;
};

/// Blocking group-wise redistribution for exchanges whose receive counts
/// are *not* known in advance -- the multilevel sorter routes each local
/// piece to one deterministically assigned member of its destination
/// group, and a receiver cannot predict how many elements (or which
/// non-empty pieces) will arrive. Ships one message per non-empty non-self
/// destination and returns everything received, concatenated in source-
/// rank order (self-destined entries bypass the transport).
///
/// kSparse (and kAuto below the dense threshold) delivers over the
/// transport's sparse collective; kAlltoallv runs the dense counts +
/// payload rounds. kCoalesced degrades to kSparse: its expectation-driven
/// termination requires known receive counts, which this entry point is
/// for exchanges without. The kAuto decision uses `out.size()` and the
/// group size, so every rank must pass the same number of entries (include
/// the empty ones). `stats`, if non-null, is incremented by the payload
/// traffic (barrier/counts metadata excluded, as everywhere in this
/// layer). `segment_bytes` > 0 bounds every payload message of the
/// sparse and dense paths (chunked / pipelined by the transport).
std::vector<double> ExchangeGroupwise(const std::shared_ptr<Transport>& tr,
                                      std::span<const Outgoing> out, int tag,
                                      Mode mode = Mode::kAuto,
                                      ExchangeStats* stats = nullptr,
                                      std::int64_t segment_bytes = 0);

/// One logically-contiguous run of elements to redistribute, plus where
/// its incoming counterpart accumulates.
struct Segment {
  const double* data = nullptr;   // contiguous elements (may be null if 0)
  std::int64_t count = 0;         // number of elements
  std::int64_t slot_begin = 0;    // absolute slot of data[0] in the layout
  std::vector<double>* sink = nullptr;  // received elements are appended
  std::int64_t expect = 0;        // elements this rank receives (overlap)
};

/// Starts a nonblocking redistribution of `segments` onto `layout` over
/// the transport. All segments coalesce into one exchange regardless of
/// how many there are: the dense path runs one counts round plus one
/// payload Alltoallv; the coalesced path ships one combined message per
/// non-empty destination. Self-destined elements bypass the transport.
///
/// The segment data is copied out before this returns, so callers may
/// free their buffers immediately; sinks must stay alive (and must not be
/// resized by the caller) until the returned Poll reports completion.
/// `stats`, if non-null, is incremented synchronously at start time.
///
/// `segment_bytes` > 0 enables the large-message regime: the dense path
/// pipelines its Alltoallv blocks, the sparse path chunks its payloads,
/// and kAuto flips coalesced -> sparse exactly when the largest message
/// any rank could owe one destination (bounded by the destination's
/// capacity plus the k-counts header, a globally shared quantity) would
/// exceed segment_bytes. A forced kCoalesced stays unsegmented: its
/// expectation-terminated eager sends have no chunk protocol.
///
/// The hierarchical path (kHierarchical, or kAuto on a two-level cost
/// model when the group spans nodes) completes the whole exchange before
/// returning (an already-done Poll): its three node-aware phases are
/// collective sparse calls. Safe -- every group member reaches this call
/// -- but a janus rank serializes its two groups' exchanges instead of
/// interleaving them.
Poll StartSegmentExchange(const std::shared_ptr<Transport>& tr,
                          const CapacityLayout& layout,
                          std::vector<Segment> segments, int tag,
                          Mode mode = Mode::kAuto,
                          ExchangeStats* stats = nullptr,
                          std::int64_t segment_bytes = 0);

}  // namespace exchange
}  // namespace jsort
