#include "sort/multilevel_sort.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "sort/partition.hpp"
#include "sort/sampling.hpp"
#include "topo/hier_exchange.hpp"

namespace jsort {
namespace {

constexpr int kTagSplitter = 2048;
constexpr int kTagPieceBase = 2080;  // + level

void WaitPoll(Poll& p) {
  while (!p()) std::this_thread::yield();
}

/// Near-equal partition of p ranks into k groups: group g covers
/// [Begin(g), Begin(g+1)) with the first p%k groups one rank larger.
struct GroupLayout {
  int p = 1;
  int k = 1;

  int Begin(int g) const {
    const int base = p / k;
    const int extra = p % k;
    return g * base + std::min(g, extra);
  }
  int SizeOfGroup(int g) const { return Begin(g + 1) - Begin(g); }
  int GroupOfRank(int r) const {
    // O(1) arithmetic inverse of Begin: the first p%k groups are one rank
    // wider and jointly cover the first (base+1)*(p%k) ranks.
    const int base = p / k;
    const int extra = p % k;
    const int wide = (base + 1) * extra;
    return r < wide ? r / (base + 1) : extra + (r - wide) / base;
  }
};

}  // namespace

std::vector<double> MultilevelSampleSort(
    const std::shared_ptr<Transport>& world, std::vector<double> local,
    const MultilevelConfig& cfg, MultilevelStats* stats) {
  if (world == nullptr) {
    throw mpisim::UsageError("MultilevelSampleSort: null transport");
  }
  if (cfg.k != 0 && cfg.k < 2) {
    throw mpisim::UsageError("MultilevelSampleSort: k must be >= 2 (or 0)");
  }
  int k_cfg = cfg.k;
  if (k_cfg == 0) {
    // Topology-derived default: one group per node aligns the first
    // level's groups with node boundaries, so later levels stay
    // node-local. Off a two-level cost model (or on a single node) the
    // node count carries no information -- fall back to the classic 4.
    const mpisim::Runtime* rt = mpisim::Ctx().runtime;
    std::vector<int> node_of(static_cast<std::size_t>(world->Size()));
    for (int r = 0; r < world->Size(); ++r) {
      node_of[static_cast<std::size_t>(r)] =
          rt->NodeOf(world->WorldRankOf(r));
    }
    const int nodes = topo::VnodesOf(node_of).Count();
    k_cfg = rt->options().cost.Hierarchical() && nodes > 1
                ? std::max(2, nodes)
                : 4;
  }
  if (stats != nullptr) *stats = MultilevelStats{};
  std::mt19937_64 rng(cfg.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(mpisim::Ctx().world_rank) +
                        1)));

  std::shared_ptr<Transport> tr = world;
  int level = 0;
  while (tr->Size() > 1) {
    const int p = tr->Size();
    const int rank = tr->Rank();
    const int k = std::min(k_cfg, p);
    const GroupLayout groups{p, k};

    // 1) Splitter selection: sample, gather, pick k-1 equidistant, bcast.
    const int per_rank = std::max(1, cfg.oversample);
    std::vector<double> mine(static_cast<std::size_t>(per_rank));
    DrawSamples(local, per_rank, mine.data(), rng);
    std::vector<double> all;
    if (rank == 0) all.resize(static_cast<std::size_t>(per_rank) * p);
    Poll g = tr->Igather(mine.data(), per_rank, Datatype::kFloat64,
                         all.data(), 0, kTagSplitter + level);
    WaitPoll(g);
    std::vector<double> splitters(static_cast<std::size_t>(k - 1));
    if (rank == 0) {
      std::sort(all.begin(), all.end());
      for (int i = 1; i < k; ++i) {
        splitters[static_cast<std::size_t>(i - 1)] =
            all[static_cast<std::size_t>(i) * all.size() / k];
      }
    }
    Poll b = tr->Ibcast(splitters.data(), k - 1, Datatype::kFloat64, 0,
                        kTagSplitter + level);
    WaitPoll(b);

    // 2) Partition into k pieces with the branchless splitter-tree kernel.
    const KWayBuckets pieces = PartitionKWay(local, splitters);
    local.clear();
    local.shrink_to_fit();

    // 3) AMS-style group-wise exchange: sender r deterministically assigns
    //    piece g to group-g member Begin(g) + r % |group g|, spreading
    //    senders evenly, and ships all pieces through the exchange layer.
    //    Only non-empty pieces cost a message startup; receivers need no
    //    precomputed expectations (the layer's sparse collective detects
    //    termination), so empty pieces are simply never sent.
    std::vector<exchange::Outgoing> out(static_cast<std::size_t>(k));
    for (int piece = 0; piece < k; ++piece) {
      const int member =
          groups.Begin(piece) + rank % groups.SizeOfGroup(piece);
      out[static_cast<std::size_t>(piece)] = exchange::Outgoing{
          member, pieces.Bucket(piece).data(), pieces.Count(piece)};
    }
    exchange::ExchangeStats es;
    local = exchange::ExchangeGroupwise(tr, out, kTagPieceBase + level,
                                        cfg.exchange_mode, &es,
                                        cfg.segment_bytes);
    if (stats != nullptr) {
      stats->messages_sent += es.messages_sent;
      stats->segments_sent += es.segments;
      stats->level_stats.push_back(es);
    }

    // 4) Recurse within my group (O(1) local split with RBC).
    const int my_group = groups.GroupOfRank(rank);
    tr = tr->Split(groups.Begin(my_group), groups.Begin(my_group + 1) - 1);
    ++level;
  }
  std::sort(local.begin(), local.end());
  if (stats != nullptr) {
    stats->levels = level;
    stats->final_elements = static_cast<std::int64_t>(local.size());
  }
  return local;
}

}  // namespace jsort
