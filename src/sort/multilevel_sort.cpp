#include "sort/multilevel_sort.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "sort/sampling.hpp"

namespace jsort {
namespace {

constexpr int kTagSplitter = 2048;
constexpr int kTagPieceBase = 2080;  // + level

void WaitPoll(Poll& p) {
  while (!p()) std::this_thread::yield();
}

/// Near-equal partition of p ranks into k groups: group g covers
/// [Begin(g), Begin(g+1)) with the first p%k groups one rank larger.
struct GroupLayout {
  int p = 1;
  int k = 1;

  int Begin(int g) const {
    const int base = p / k;
    const int extra = p % k;
    return g * base + std::min(g, extra);
  }
  int SizeOfGroup(int g) const { return Begin(g + 1) - Begin(g); }
  int GroupOfRank(int r) const {
    // Inverse of Begin; k is tiny, linear scan is fine.
    for (int g = 0; g < k; ++g) {
      if (r < Begin(g + 1)) return g;
    }
    return k - 1;
  }
};

}  // namespace

std::vector<double> MultilevelSampleSort(
    const std::shared_ptr<Transport>& world, std::vector<double> local,
    const MultilevelConfig& cfg, MultilevelStats* stats) {
  if (world == nullptr) {
    throw mpisim::UsageError("MultilevelSampleSort: null transport");
  }
  if (cfg.k < 2) {
    throw mpisim::UsageError("MultilevelSampleSort: k must be >= 2");
  }
  if (stats != nullptr) *stats = MultilevelStats{};
  std::mt19937_64 rng(cfg.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(mpisim::Ctx().world_rank) +
                        1)));

  std::shared_ptr<Transport> tr = world;
  int level = 0;
  while (tr->Size() > 1) {
    const int p = tr->Size();
    const int rank = tr->Rank();
    const int k = std::min(cfg.k, p);
    const GroupLayout groups{p, k};

    // 1) Splitter selection: sample, gather, pick k-1 equidistant, bcast.
    const int per_rank = std::max(1, cfg.oversample);
    std::vector<double> mine(static_cast<std::size_t>(per_rank));
    DrawSamples(local, per_rank, mine.data(), rng);
    std::vector<double> all;
    if (rank == 0) all.resize(static_cast<std::size_t>(per_rank) * p);
    Poll g = tr->Igather(mine.data(), per_rank, Datatype::kFloat64,
                         all.data(), 0, kTagSplitter + level);
    WaitPoll(g);
    std::vector<double> splitters(static_cast<std::size_t>(k - 1));
    if (rank == 0) {
      std::sort(all.begin(), all.end());
      for (int i = 1; i < k; ++i) {
        splitters[static_cast<std::size_t>(i - 1)] =
            all[static_cast<std::size_t>(i) * all.size() / k];
      }
    }
    Poll b = tr->Ibcast(splitters.data(), k - 1, Datatype::kFloat64, 0,
                        kTagSplitter + level);
    WaitPoll(b);

    // 2) Partition into k pieces by binary search over the splitters.
    std::vector<std::vector<double>> pieces(static_cast<std::size_t>(k));
    for (double x : local) {
      const auto it =
          std::upper_bound(splitters.begin(), splitters.end(), x);
      pieces[static_cast<std::size_t>(it - splitters.begin())].push_back(x);
    }
    local.clear();
    local.shrink_to_fit();

    // 3) Route piece g to one member of group g (sender r picks member
    //    r % |group g|, spreading senders evenly). Every rank can compute
    //    how many messages it expects: senders mapped onto it.
    const int my_group = groups.GroupOfRank(rank);
    const int my_index = rank - groups.Begin(my_group);
    const int my_group_size = groups.SizeOfGroup(my_group);
    // Senders r with r % my_group_size == my_index.
    int expected = 0;
    for (int r = 0; r < p; ++r) {
      if (r % my_group_size == my_index) ++expected;
    }

    const int tag = kTagPieceBase + level;
    for (int piece = 0; piece < k; ++piece) {
      const int gs = groups.SizeOfGroup(piece);
      const int member = groups.Begin(piece) + rank % gs;
      const auto& data = pieces[static_cast<std::size_t>(piece)];
      tr->Send(data.data(), static_cast<int>(data.size()),
               Datatype::kFloat64, member, tag);
      if (stats != nullptr) ++stats->messages_sent;
    }
    std::vector<double> received;
    for (int got = 0; got < expected; ++got) {
      Status st;
      bool found = false;
      while (!found) {
        found = tr->IprobeAny(tag, &st);
        if (!found) std::this_thread::yield();
      }
      const int n = st.Count(Datatype::kFloat64);
      const std::size_t old = received.size();
      received.resize(old + static_cast<std::size_t>(n));
      tr->Recv(received.data() + old, n, Datatype::kFloat64, st.source, tag);
    }
    local = std::move(received);

    // 4) Recurse within my group (O(1) local split with RBC).
    tr = tr->Split(groups.Begin(my_group), groups.Begin(my_group + 1) - 1);
    ++level;
  }
  std::sort(local.begin(), local.end());
  if (stats != nullptr) {
    stats->levels = level;
    stats->final_elements = static_cast<std::int64_t>(local.size());
  }
  return local;
}

}  // namespace jsort
