// Pivot selection policies for JQuick (Sections VII and VIII-A).
//
// Two policies are implemented:
//  * kRandomElement -- Section VII's description: "a random element is
//    selected and broadcasted". Distributedly, every rank draws a local
//    candidate and a weighted-reservoir key u^(1/m) (m = local element
//    count); a max-key reduction selects a globally uniform element with a
//    single (alpha log p)-latency reduce + bcast.
//  * kMedianOfSamples -- Section VIII-A: the pivot is the median of
//    max(k1 log p, k2 n/p, k3) samples drawn by random sampling.
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "mpisim/datatype.hpp"

namespace jsort {

enum class PivotPolicy {
  kRandomElement,
  kMedianOfSamples,
};

/// Sample-count parameters of Section VIII-A: the total number of samples
/// is max(k1 * log2(p), k2 * (n/p), k3), split evenly across ranks.
struct SampleParams {
  double k1 = 2.0;
  double k2 = 0.0;
  double k3 = 16.0;

  /// Total samples for a task over p ranks with per-rank load n_over_p.
  int TotalSamples(int p, std::int64_t n_over_p) const;
};

/// Weighted-reservoir candidate: key = u^(1/m) for u ~ U(0,1), value = a
/// uniformly drawn local element. Reducing with kMaxPairFirst over all
/// ranks yields a globally uniform random element. Empty ranks contribute
/// key = -1 (never wins unless every rank is empty).
mpisim::PairDD ReservoirCandidate(std::span<const double> data,
                                  std::mt19937_64& rng);

/// Draws k samples uniformly with replacement from `data` into `out`
/// (out must hold k doubles). If data is empty, fills with quiet NaN-free
/// sentinel +inf so callers can filter.
void DrawSamples(std::span<const double> data, int k, double* out,
                 std::mt19937_64& rng);

/// Median of a scratch sample buffer (modifies it). Empty -> +inf.
double MedianOf(std::span<double> samples);

}  // namespace jsort
