#include "sort/exchange.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "topo/hier_exchange.hpp"

namespace jsort {
namespace exchange {
namespace {

void WaitPoll(const Poll& p) {
  while (!p()) {
    if (mpisim::Ctx().runtime->Aborted()) throw mpisim::AbortedError();
    std::this_thread::yield();
  }
}

/// Vnode map of the transport's group under the runtime's installed
/// topology: group ranks translate to world ranks, world ranks to nodes,
/// and maximal same-node runs become vnodes (topo/hier_exchange.hpp).
/// Purely local -- every member computes the identical map.
topo::VnodeMap VnodesOfGroup(const Transport& tr) {
  const mpisim::Runtime* rt = mpisim::Ctx().runtime;
  std::vector<int> node_of(static_cast<std::size_t>(tr.Size()));
  for (int r = 0; r < tr.Size(); ++r) {
    node_of[static_cast<std::size_t>(r)] = rt->NodeOf(tr.WorldRankOf(r));
  }
  return topo::VnodesOf(node_of);
}

/// kAuto routes hierarchically exactly when the cost model distinguishes
/// intra- from inter-node traffic AND the group actually spans more than
/// one vnode -- both globally shared facts, so the decision is identical
/// on every rank. On a flat cost model the node-aware detour could only
/// add phases, so the flat resolution below stays bit-for-bit unchanged.
bool AutoHier(const Transport& tr) {
  if (!mpisim::Ctx().runtime->options().cost.Hierarchical()) return false;
  return VnodesOfGroup(tr).Count() > 1;
}

/// Runs the three-phase node-aware exchange over the transport's sparse
/// collective: one blocking sparse call per phase, all on the caller's
/// tag (the sparse termination barriers fence the back-to-back phases).
std::vector<std::byte> RunHier(Transport& tr,
                               std::span<const topo::BytePiece> pieces,
                               int tag, std::int64_t segment_bytes,
                               topo::HierLevelStats* hs) {
  const topo::VnodeMap vn = VnodesOfGroup(tr);
  auto sparse = [&](std::span<const SparseBlock> sends) {
    std::vector<SparseDelivery> deliveries;
    WaitPoll(tr.IsparseAlltoallv(sends, Datatype::kByte, &deliveries, tag,
                                 segment_bytes));
    return deliveries;
  };
  return topo::HierExchangeBytes(vn, tr.Rank(), pieces, sparse, hs);
}

/// Folds one hierarchical run's per-level traffic into the caller stats.
void AddHierStats(ExchangeStats* stats, const topo::HierLevelStats& hs) {
  if (stats == nullptr) return;
  stats->segments += hs.intra_messages + hs.inter_messages;
  stats->intra_messages += hs.intra_messages;
  stats->intra_bytes += hs.intra_bytes;
  stats->inter_messages += hs.inter_messages;
  stats->inter_bytes += hs.inter_bytes;
}

/// Globally consistent kAuto resolution for the segment exchange. The
/// decision must be identical on every rank of the group (receivers
/// behave differently per mode), so it may only depend on quantities all
/// ranks share: the group size, the segment count, the layout and the
/// segment limit. An interval redistribution sends each segment to at
/// most a handful of contiguous destinations (greedy chunks of a run no
/// longer than the uniform quota span <= 4 ranks), so with k segments a
/// rank reaches at most ~4k peers -- the estimated non-empty-destination
/// fraction is min(4k, p-1)/(p-1). At f >= 1/2 the dense path wins (most
/// peers are hit anyway); below it a skewed path. Coalesced is preferred
/// (segment exchanges know their receive expectations, and the
/// expectation-terminated drain adds zero messages where the sparse
/// collective pays two barriers) -- unless the large-message regime could
/// be hit: the largest message any rank can owe one destination is the
/// k-counts header plus at most the destination's whole capacity, a bound
/// every rank computes identically from the layout. Past segment_bytes
/// the chunk-capable sparse collective takes over, because the coalesced
/// eager sends cannot bound their message size. (ExchangeGroupwise is the
/// kAuto branch that resolves to kSparse unconditionally: there receive
/// counts are unknown and expectation-based termination is impossible.)
Mode Resolve(Mode mode, int p, std::size_t k, const CapacityLayout& layout,
             std::int64_t segment_bytes) {
  if (mode != Mode::kAuto) return mode;
  const std::int64_t max_targets = 4 * static_cast<std::int64_t>(k);
  if (2 * max_targets >= p - 1) return Mode::kAlltoallv;
  if (segment_bytes > 0) {
    std::int64_t max_cap = std::max(layout.cap_first, layout.cap_last);
    if (p > 2) max_cap = std::max(max_cap, layout.quota);
    const std::int64_t bound =
        (static_cast<std::int64_t>(k) + max_cap) *
        static_cast<std::int64_t>(sizeof(double));
    if (bound > segment_bytes) return Mode::kSparse;
  }
  return Mode::kCoalesced;
}

/// Shared state of one in-flight segment exchange; the returned Poll holds
/// it alive.
struct SegmentState {
  std::shared_ptr<Transport> tr;
  int p = 0;
  int me = 0;
  std::size_t k = 0;
  int tag = 0;
  std::int64_t segment_bytes = 0;
  std::vector<Segment> segments;
  std::vector<std::int64_t> remaining;  // per segment, elements still owed

  // Send side (both modes).
  std::vector<std::int64_t> counts_matrix;  // [dest * k + seg]
  std::vector<double> payload;              // grouped by dest, seg order
  std::vector<int> sendcounts, sdispls;     // per dest, elements

  // Dense-path state.
  int phase = 0;
  Poll pending;
  std::vector<std::int64_t> incoming_matrix;  // [src * k + seg]
  std::vector<int> recvcounts, rdispls;
  std::vector<double> staging;

  bool coalesced = false;
  bool done = false;

  // Sparse-path state.
  bool sparse = false;
  std::vector<SparseDelivery> deliveries;

  bool Step();
  void StartDenseCountsRound();
  void FinishDense();
  bool DrainCoalesced();
  void UnpackMessage(const std::byte* msg, std::size_t size);
};

bool SegmentState::Step() {
  if (done) return true;
  if (sparse) {
    if (!pending()) return false;
    for (const SparseDelivery& d : deliveries) {
      UnpackMessage(d.bytes.data(), d.bytes.size());
    }
    deliveries.clear();
    for (std::size_t j = 0; j < k; ++j) {
      if (remaining[j] != 0) {
        throw mpisim::Error(
            "jsort::exchange: sparse exchange delivered a different element "
            "count than the layout overlap");
      }
    }
    done = true;
    return true;
  }
  if (coalesced) {
    if (!DrainCoalesced()) return false;
    done = true;
    return true;
  }
  if (!pending()) return false;
  if (phase == 0) {
    // Counts known: size the staging buffer and start the payload round.
    recvcounts.assign(static_cast<std::size_t>(p), 0);
    rdispls.assign(static_cast<std::size_t>(p), 0);
    std::int64_t total = 0;
    for (int s = 0; s < p; ++s) {
      std::int64_t from_s = 0;
      for (std::size_t j = 0; j < k; ++j) {
        from_s += incoming_matrix[static_cast<std::size_t>(s) * k + j];
      }
      recvcounts[static_cast<std::size_t>(s)] = static_cast<int>(from_s);
      rdispls[static_cast<std::size_t>(s)] = static_cast<int>(total);
      total += from_s;
    }
    staging.resize(static_cast<std::size_t>(total));
    pending = tr->Ialltoallv(payload.data(), sendcounts, sdispls,
                             Datatype::kFloat64, staging.data(), recvcounts,
                             rdispls, tag, segment_bytes);
    phase = 1;
    if (!pending()) return false;
  }
  FinishDense();
  done = true;
  return true;
}

void SegmentState::StartDenseCountsRound() {
  // k int64 entries per peer, uniform (the self block is a local copy of
  // zeros). The transport copies these small arrays at call time. The
  // segment limit applies here too, so even a k*8-byte counts message
  // never exceeds the configured bound.
  incoming_matrix.assign(static_cast<std::size_t>(p) * k, 0);
  std::vector<int> ccounts(static_cast<std::size_t>(p),
                           static_cast<int>(k));
  std::vector<int> cdispls(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    cdispls[static_cast<std::size_t>(i)] = i * static_cast<int>(k);
  }
  pending = tr->Ialltoallv(counts_matrix.data(), ccounts, cdispls,
                           Datatype::kInt64, incoming_matrix.data(), ccounts,
                           cdispls, tag, segment_bytes);
}

void SegmentState::FinishDense() {
  // Split the per-source staging blocks into the per-segment sinks.
  for (int s = 0; s < p; ++s) {
    const double* cursor =
        staging.data() + static_cast<std::size_t>(
                             rdispls[static_cast<std::size_t>(s)]);
    for (std::size_t j = 0; j < k; ++j) {
      const std::int64_t n =
          incoming_matrix[static_cast<std::size_t>(s) * k + j];
      if (n != 0) {
        segments[j].sink->insert(segments[j].sink->end(), cursor, cursor + n);
        remaining[j] -= n;
      }
      cursor += n;
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (remaining[j] != 0) {
      throw mpisim::Error(
          "jsort::exchange: received element count disagrees with the "
          "layout overlap");
    }
  }
}

void SegmentState::UnpackMessage(const std::byte* msg, std::size_t size) {
  // [int64 seg_counts[k]][segment payloads in order].
  if (size < k * sizeof(std::int64_t)) {
    throw mpisim::Error("jsort::exchange: malformed exchange message");
  }
  std::size_t off = k * sizeof(std::int64_t);
  for (std::size_t j = 0; j < k; ++j) {
    std::int64_t n = 0;
    std::memcpy(&n, msg + j * sizeof(std::int64_t), sizeof n);
    if (n < 0 ||
        static_cast<std::size_t>(n) > (size - off) / sizeof(double)) {
      throw mpisim::Error(
          "jsort::exchange: exchange message payload disagrees with its "
          "header");
    }
    if (n != 0) {
      std::vector<double>& sink = *segments[j].sink;
      const std::size_t old = sink.size();
      sink.resize(old + static_cast<std::size_t>(n));
      std::memcpy(sink.data() + old, msg + off,
                  static_cast<std::size_t>(n) * sizeof(double));
      off += static_cast<std::size_t>(n) * sizeof(double);
      remaining[j] -= n;
    }
    if (remaining[j] < 0) {
      throw mpisim::Error(
          "jsort::exchange: received more elements than the layout "
          "overlap");
    }
  }
}

bool SegmentState::DrainCoalesced() {
  bool all = true;
  for (std::size_t j = 0; j < k; ++j) all &= remaining[j] == 0;
  while (!all) {
    Status st;
    if (!tr->IprobeAny(tag, &st)) return false;
    std::vector<std::byte> msg(st.bytes);
    tr->Recv(msg.data(), static_cast<int>(st.bytes), Datatype::kByte,
             st.source, tag);
    UnpackMessage(msg.data(), msg.size());
    all = true;
    for (std::size_t j = 0; j < k; ++j) all &= remaining[j] == 0;
  }
  return true;
}

}  // namespace

std::int64_t ExscanCount(Transport& tr, std::int64_t mine, int tag) {
  std::int64_t incl = 0;
  Poll s = tr.Iscan(&mine, &incl, 1, Datatype::kInt64, ReduceOp::kSum, tag);
  WaitPoll(s);
  return incl - mine;
}

SendPlan PlanFromInterval(const CapacityLayout& layout,
                          std::int64_t slot_begin, std::int64_t n, int p) {
  SendPlan plan;
  plan.counts.assign(static_cast<std::size_t>(p), 0);
  plan.displs.assign(static_cast<std::size_t>(p), 0);
  if (n > 0) {
    for (const Chunk& c : AssignChunks(layout, slot_begin, slot_begin + n)) {
      plan.counts[static_cast<std::size_t>(c.target)] +=
          static_cast<int>(c.count);
    }
  }
  int off = 0;
  for (int i = 0; i < p; ++i) {
    plan.displs[static_cast<std::size_t>(i)] = off;
    off += plan.counts[static_cast<std::size_t>(i)];
  }
  return plan;
}

std::vector<double> ExchangeBuckets(
    Transport& tr, const std::vector<std::vector<double>>& buckets, int tag,
    ExchangeStats* stats, std::int64_t segment_bytes, Mode mode) {
  const int p = tr.Size();
  if (static_cast<int>(buckets.size()) != p) {
    throw mpisim::UsageError(
        "jsort::exchange::ExchangeBuckets: one bucket per rank required");
  }
  // Flatten into the bucket-major layout of the flat variant and forward.
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(p) + 1, 0);
  for (int i = 0; i < p; ++i) {
    offsets[static_cast<std::size_t>(i) + 1] =
        offsets[static_cast<std::size_t>(i)] +
        static_cast<std::int64_t>(buckets[static_cast<std::size_t>(i)].size());
  }
  std::vector<double> flat(static_cast<std::size_t>(offsets.back()));
  for (int i = 0; i < p; ++i) {
    std::copy(buckets[static_cast<std::size_t>(i)].begin(),
              buckets[static_cast<std::size_t>(i)].end(),
              flat.begin() + offsets[static_cast<std::size_t>(i)]);
  }
  return ExchangeBuckets(tr, flat, offsets, tag, stats, segment_bytes, mode);
}

std::vector<double> ExchangeBuckets(Transport& tr,
                                    std::span<const double> elements,
                                    std::span<const std::int64_t> offsets,
                                    int tag, ExchangeStats* stats,
                                    std::int64_t segment_bytes, Mode mode) {
  const int p = tr.Size();
  const int me = tr.Rank();
  if (static_cast<int>(offsets.size()) != p + 1) {
    throw mpisim::UsageError(
        "jsort::exchange::ExchangeBuckets: offsets must have Size()+1 "
        "entries");
  }

  if (mode == Mode::kHierarchical ||
      (mode == Mode::kAuto && AutoHier(tr))) {
    // Node-aware delivery: the bucket blocks are already contiguous and
    // per-destination, so they feed the engine without any copy -- the
    // self bucket included (the engine keeps it local and splices it into
    // the source-ordered result, exactly where the dense path's local
    // copy lands). No counts round: the engine's messages are
    // self-describing.
    std::vector<topo::BytePiece> pieces;
    std::int64_t nonempty = 0, total_out = 0;
    for (int i = 0; i < p; ++i) {
      const std::int64_t n = offsets[static_cast<std::size_t>(i) + 1] -
                             offsets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      pieces.push_back(topo::BytePiece{
          i,
          reinterpret_cast<const std::byte*>(
              elements.data() + offsets[static_cast<std::size_t>(i)]),
          n * static_cast<std::int64_t>(sizeof(double))});
      if (i != me) {
        ++nonempty;
        total_out += n;
      }
    }
    topo::HierLevelStats hs;
    const std::vector<std::byte> bytes =
        RunHier(tr, pieces, tag, segment_bytes, &hs);
    if (stats != nullptr) {
      stats->messages_sent += nonempty;
      stats->elements_sent += total_out;
    }
    AddHierStats(stats, hs);
    std::vector<double> out(bytes.size() / sizeof(double));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }
  // Bucket-major input needs no send-side copy: the per-peer blocks are
  // already contiguous, and the self bucket rides along as a zero-count
  // gap (copied locally below).
  std::vector<int> sendcounts(static_cast<std::size_t>(p)),
      sdispls(static_cast<std::size_t>(p));
  std::vector<std::int64_t> my_counts(static_cast<std::size_t>(p));
  std::int64_t total_out = 0;
  for (int i = 0; i < p; ++i) {
    const std::int64_t n = offsets[static_cast<std::size_t>(i) + 1] -
                           offsets[static_cast<std::size_t>(i)];
    my_counts[static_cast<std::size_t>(i)] = n;
    sendcounts[static_cast<std::size_t>(i)] = i == me ? 0 : static_cast<int>(n);
    sdispls[static_cast<std::size_t>(i)] =
        static_cast<int>(offsets[static_cast<std::size_t>(i)]);
    if (i != me) total_out += n;
  }

  // Counts round: one int64 per peer.
  std::vector<std::int64_t> in_counts(static_cast<std::size_t>(p), 0);
  std::vector<int> ones(static_cast<std::size_t>(p), 1),
      iota(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) iota[static_cast<std::size_t>(i)] = i;
  WaitPoll(tr.Ialltoallv(my_counts.data(), ones, iota, Datatype::kInt64,
                         in_counts.data(), ones, iota, tag));

  // Payload round. The self block is a zero-count gap in the exchange
  // (matching sendcounts[me] == 0 above); its slot in `out` is filled
  // directly from the input.
  std::vector<int> recvcounts(static_cast<std::size_t>(p)),
      rdispls(static_cast<std::size_t>(p));
  std::int64_t total_in = 0;
  for (int i = 0; i < p; ++i) {
    recvcounts[static_cast<std::size_t>(i)] =
        i == me ? 0 : static_cast<int>(in_counts[static_cast<std::size_t>(i)]);
    rdispls[static_cast<std::size_t>(i)] = static_cast<int>(total_in);
    total_in += in_counts[static_cast<std::size_t>(i)];
  }
  std::vector<double> out(static_cast<std::size_t>(total_in));
  std::copy(elements.begin() + offsets[static_cast<std::size_t>(me)],
            elements.begin() + offsets[static_cast<std::size_t>(me) + 1],
            out.begin() + rdispls[static_cast<std::size_t>(me)]);
  WaitPoll(tr.Ialltoallv(elements.data(), sendcounts, sdispls,
                         Datatype::kFloat64, out.data(), recvcounts, rdispls,
                         tag, segment_bytes));
  if (stats != nullptr) {
    stats->messages_sent += p - 1;
    stats->elements_sent += total_out;  // self excluded
    for (int i = 0; i < p; ++i) {
      if (i == me) continue;
      stats->segments += mpisim::AlltoallvSegmentsOf(
          sendcounts[static_cast<std::size_t>(i)], sizeof(double),
          segment_bytes);
    }
  }
  return out;
}

std::vector<double> ExchangeGroupwise(const std::shared_ptr<Transport>& tr,
                                      std::span<const Outgoing> out, int tag,
                                      Mode mode, ExchangeStats* stats,
                                      std::int64_t segment_bytes) {
  if (tr == nullptr) {
    throw mpisim::UsageError("jsort::exchange::ExchangeGroupwise: null "
                             "transport");
  }
  const int p = tr->Size();
  const int me = tr->Rank();

  // Globally consistent resolution from the entry count (identical on
  // every rank by contract): a rank reaches at most out.size() peers, so
  // the estimated non-empty-destination fraction is out.size()/(p-1).
  // Coalesced delivery needs known receive counts, which this entry point
  // exists to avoid -- it degrades to the sparse collective.
  Mode resolved = mode;
  if (resolved == Mode::kAuto) {
    if (AutoHier(*tr)) {
      resolved = Mode::kHierarchical;
    } else {
      const auto max_targets = static_cast<std::int64_t>(out.size());
      resolved = 2 * max_targets >= p - 1 ? Mode::kAlltoallv : Mode::kSparse;
    }
  }
  if (resolved == Mode::kCoalesced) resolved = Mode::kSparse;

  // Per-destination element totals (entries to one destination coalesce,
  // in entry order).
  std::vector<std::int64_t> to(static_cast<std::size_t>(p), 0);
  for (const Outgoing& o : out) {
    if (o.dest < 0 || o.dest >= p) {
      throw mpisim::UsageError(
          "jsort::exchange::ExchangeGroupwise: destination out of range");
    }
    if (o.count < 0) {
      throw mpisim::UsageError(
          "jsort::exchange::ExchangeGroupwise: negative count");
    }
    to[static_cast<std::size_t>(o.dest)] += o.count;
  }
  std::int64_t nonempty = 0, elements = 0;
  for (int d = 0; d < p; ++d) {
    if (d == me || to[static_cast<std::size_t>(d)] == 0) continue;
    ++nonempty;
    elements += to[static_cast<std::size_t>(d)];
  }
  if (stats != nullptr) {
    stats->messages_sent += resolved == Mode::kAlltoallv
                                ? static_cast<std::int64_t>(p - 1)
                                : nonempty;
    stats->elements_sent += elements;
    // The hierarchical path reports its wire traffic per phase after the
    // run (AddHierStats); the flat paths mirror the backend segmentation
    // arithmetic here.
    for (int d = 0; d < p && resolved != Mode::kHierarchical; ++d) {
      if (d == me) continue;
      const std::int64_t to_d = to[static_cast<std::size_t>(d)];
      if (resolved == Mode::kSparse) {
        if (to_d != 0) {
          stats->segments += mpisim::SparseChunksOf(
              to_d * static_cast<std::int64_t>(sizeof(double)),
              segment_bytes);
        }
      } else {
        stats->segments += mpisim::AlltoallvSegmentsOf(
            to_d, sizeof(double), segment_bytes);
      }
    }
  }

  if (resolved == Mode::kHierarchical) {
    // Per-destination byte pieces (entries to one destination coalesce in
    // entry order, exactly as the sparse path ships them), run through the
    // node-aware engine. The self piece rides along: the engine keeps it
    // local and splices it into the source-ordered result, so the output
    // is byte-identical to the flat paths. Blocking; collective over the
    // group like every path of this entry point.
    std::vector<int> entries(static_cast<std::size_t>(p), 0);
    std::vector<const double*> only(static_cast<std::size_t>(p), nullptr);
    for (const Outgoing& o : out) {
      if (o.count == 0) continue;
      ++entries[static_cast<std::size_t>(o.dest)];
      only[static_cast<std::size_t>(o.dest)] = o.data;
    }
    std::vector<std::vector<double>> msgs(static_cast<std::size_t>(p));
    for (const Outgoing& o : out) {
      if (o.count == 0) continue;
      const auto di = static_cast<std::size_t>(o.dest);
      if (entries[di] > 1) msgs[di].insert(msgs[di].end(), o.data,
                                           o.data + o.count);
    }
    std::vector<topo::BytePiece> pieces;
    for (int d = 0; d < p; ++d) {
      const auto di = static_cast<std::size_t>(d);
      if (to[di] == 0) continue;
      const double* src = entries[di] == 1 ? only[di] : msgs[di].data();
      pieces.push_back(topo::BytePiece{
          d, reinterpret_cast<const std::byte*>(src),
          to[di] * static_cast<std::int64_t>(sizeof(double))});
    }
    topo::HierLevelStats hs;
    const std::vector<std::byte> bytes =
        RunHier(*tr, pieces, tag, segment_bytes, &hs);
    AddHierStats(stats, hs);
    std::vector<double> result(bytes.size() / sizeof(double));
    std::memcpy(result.data(), bytes.data(), bytes.size());
    return result;
  }

  if (resolved == Mode::kSparse) {
    // One raw-payload message per non-empty destination; the self block
    // joins the sparse call so the collective's source-ordered delivery
    // already interleaves it correctly. A destination fed by one entry
    // (the only case the multilevel sorter produces) ships straight from
    // the caller's buffer -- the collective copies blocks out at call
    // time; only multi-entry destinations need a coalescing buffer.
    std::vector<int> entries(static_cast<std::size_t>(p), 0);
    for (const Outgoing& o : out) {
      if (o.count != 0) ++entries[static_cast<std::size_t>(o.dest)];
    }
    std::vector<std::vector<double>> msgs(static_cast<std::size_t>(p));
    std::vector<SparseBlock> blocks;
    for (const Outgoing& o : out) {
      if (o.count == 0) continue;
      const auto di = static_cast<std::size_t>(o.dest);
      if (entries[di] == 1) {
        blocks.push_back(
            SparseBlock{o.dest, o.data, static_cast<int>(o.count)});
      } else {
        msgs[di].insert(msgs[di].end(), o.data, o.data + o.count);
      }
    }
    for (int d = 0; d < p; ++d) {
      const auto& m = msgs[static_cast<std::size_t>(d)];
      if (m.empty()) continue;
      blocks.push_back(
          SparseBlock{d, m.data(), static_cast<int>(m.size())});
    }
    std::vector<SparseDelivery> deliveries;
    WaitPoll(tr->IsparseAlltoallv(blocks, Datatype::kFloat64, &deliveries,
                                  tag, segment_bytes));
    std::int64_t total = 0;
    for (const SparseDelivery& d : deliveries) {
      total += static_cast<std::int64_t>(d.bytes.size() / sizeof(double));
    }
    std::vector<double> result(static_cast<std::size_t>(total));
    std::size_t cursor = 0;
    for (const SparseDelivery& d : deliveries) {
      std::memcpy(result.data() + cursor, d.bytes.data(), d.bytes.size());
      cursor += d.bytes.size() / sizeof(double);
    }
    return result;
  }

  // Dense path: group the payload by destination and run the counts +
  // payload rounds; the flat bucket exchange already implements exactly
  // that (self bucket included as a local copy).
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(p) + 1, 0);
  for (int d = 0; d < p; ++d) {
    offsets[static_cast<std::size_t>(d) + 1] =
        offsets[static_cast<std::size_t>(d)] +
        to[static_cast<std::size_t>(d)];
  }
  std::vector<double> flat(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Outgoing& o : out) {
    if (o.count == 0) continue;
    std::copy(o.data, o.data + o.count,
              flat.begin() + cursor[static_cast<std::size_t>(o.dest)]);
    cursor[static_cast<std::size_t>(o.dest)] += o.count;
  }
  return ExchangeBuckets(*tr, flat, offsets, tag, nullptr, segment_bytes);
}

Poll StartSegmentExchange(const std::shared_ptr<Transport>& tr,
                          const CapacityLayout& layout,
                          std::vector<Segment> segments, int tag, Mode mode,
                          ExchangeStats* stats,
                          std::int64_t segment_bytes) {
  if (tr == nullptr) {
    throw mpisim::UsageError("jsort::exchange: null transport");
  }
  auto st = std::make_shared<SegmentState>();
  st->tr = tr;
  st->p = tr->Size();
  st->me = tr->Rank();
  st->k = segments.size();
  st->tag = tag;
  st->segment_bytes = segment_bytes;
  st->segments = std::move(segments);
  st->remaining.reserve(st->k);
  st->counts_matrix.assign(static_cast<std::size_t>(st->p) * st->k, 0);

  // Interval computation -> per-destination chunks. Self chunks bypass the
  // transport and land in their sinks right away.
  for (std::size_t j = 0; j < st->k; ++j) {
    Segment& seg = st->segments[j];
    if (seg.sink == nullptr) {
      throw mpisim::UsageError("jsort::exchange: segment without sink");
    }
    st->remaining.push_back(seg.expect);
    if (seg.count == 0) continue;
    std::int64_t cursor = 0;
    for (const Chunk& c :
         AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
      if (c.target == st->me) {
        seg.sink->insert(seg.sink->end(), seg.data + cursor,
                         seg.data + cursor + c.count);
        st->remaining[j] -= c.count;
      } else {
        st->counts_matrix[static_cast<std::size_t>(c.target) * st->k + j] +=
            c.count;
      }
      cursor += c.count;
    }
  }

  const Mode resolved = mode == Mode::kAuto && AutoHier(*tr)
                            ? Mode::kHierarchical
                            : Resolve(mode, st->p, st->k, layout,
                                      segment_bytes);
  st->coalesced = resolved == Mode::kCoalesced;
  st->sparse = resolved == Mode::kSparse;
  const bool hier = resolved == Mode::kHierarchical;

  // Per-destination totals (and traffic accounting) are mode-independent.
  std::int64_t nonempty = 0, elements = 0;
  st->sendcounts.assign(static_cast<std::size_t>(st->p), 0);
  st->sdispls.assign(static_cast<std::size_t>(st->p), 0);
  std::int64_t off = 0;
  for (int d = 0; d < st->p; ++d) {
    std::int64_t to_d = 0;
    for (std::size_t j = 0; j < st->k; ++j) {
      to_d += st->counts_matrix[static_cast<std::size_t>(d) * st->k + j];
    }
    st->sendcounts[static_cast<std::size_t>(d)] = static_cast<int>(to_d);
    st->sdispls[static_cast<std::size_t>(d)] = static_cast<int>(off);
    off += to_d;
    if (to_d != 0) {
      ++nonempty;
      elements += to_d;
    }
  }
  if (stats != nullptr) {
    stats->messages_sent += st->coalesced || st->sparse || hier
                                ? nonempty
                                : static_cast<std::int64_t>(st->p - 1);
    stats->elements_sent += elements;
    // Wire-level accounting mirrors each backend's segmentation
    // arithmetic: the dense path pipelines every per-peer block
    // (zero-count blocks still cost one empty message), the sparse path
    // chunks each self-describing message ([k int64s][payload]), the
    // coalesced path ships unsegmented. The hierarchical path reports its
    // wire traffic per phase after the run (AddHierStats) instead.
    const std::size_t header = st->k * sizeof(std::int64_t);
    for (int d = 0; d < st->p && !hier; ++d) {
      if (d == st->me) continue;
      const std::int64_t to_d = st->sendcounts[static_cast<std::size_t>(d)];
      if (st->sparse) {
        if (to_d != 0) {
          stats->segments += mpisim::SparseChunksOf(
              static_cast<std::int64_t>(header) +
                  to_d * static_cast<std::int64_t>(sizeof(double)),
              segment_bytes);
        }
      } else if (st->coalesced) {
        if (to_d != 0) stats->segments += 1;
      } else {
        stats->segments += mpisim::AlltoallvSegmentsOf(
            to_d, sizeof(double), segment_bytes);
      }
    }
  }

  if (st->coalesced || st->sparse || hier) {
    // One self-describing message per non-empty destination:
    // [int64 seg_counts[k]][segment payloads in order]. Built in a single
    // chunk walk per segment with per-destination write cursors (segments
    // are visited in order, so each message's payload is segment-ordered).
    // The coalesced path ships them as eager sends and the Poll drains
    // this rank's own expectations; the sparse path hands them to the
    // transport's barrier-terminated sparse collective instead.
    const std::size_t header = st->k * sizeof(std::int64_t);
    std::vector<std::vector<std::byte>> msgs(
        static_cast<std::size_t>(st->p));
    std::vector<std::size_t> wcursor(static_cast<std::size_t>(st->p),
                                     header);
    for (int d = 0; d < st->p; ++d) {
      if (st->sendcounts[static_cast<std::size_t>(d)] == 0) continue;
      msgs[static_cast<std::size_t>(d)].resize(
          header + static_cast<std::size_t>(
                       st->sendcounts[static_cast<std::size_t>(d)]) *
                       sizeof(double));
      std::memcpy(msgs[static_cast<std::size_t>(d)].data(),
                  st->counts_matrix.data() +
                      static_cast<std::size_t>(d) * st->k,
                  header);
    }
    for (std::size_t j = 0; j < st->k; ++j) {
      const Segment& seg = st->segments[j];
      if (seg.count == 0) continue;
      std::int64_t read = 0;
      for (const Chunk& c :
           AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
        if (c.target != st->me) {
          const auto di = static_cast<std::size_t>(c.target);
          std::memcpy(msgs[di].data() + wcursor[di], seg.data + read,
                      static_cast<std::size_t>(c.count) * sizeof(double));
          wcursor[di] += static_cast<std::size_t>(c.count) * sizeof(double);
        }
        read += c.count;
      }
    }
    if (hier) {
      // Node-aware delivery of the same self-describing messages: the
      // engine merges them per node and per destination on the wire, and
      // hands back the concatenation of the messages addressed to this
      // rank in source-rank order. Each message's extent is recomputed
      // from its own counts header ([k int64s] + payload), so the merged
      // blob splits without any extra framing. Blocking at start: the
      // three sparse phases complete before this returns with an
      // already-done Poll (the engine is a collective, so every group
      // member reaches this same call; a janus rank simply finishes one
      // group's exchange before starting the other's -- the waits-for
      // chain over adjacent groups is acyclic and cannot deadlock).
      std::vector<topo::BytePiece> pieces;
      for (int d = 0; d < st->p; ++d) {
        const auto& msg = msgs[static_cast<std::size_t>(d)];
        if (msg.empty()) continue;
        pieces.push_back(topo::BytePiece{
            d, msg.data(), static_cast<std::int64_t>(msg.size())});
      }
      topo::HierLevelStats hs;
      const std::vector<std::byte> bytes =
          RunHier(*st->tr, pieces, tag, segment_bytes, &hs);
      AddHierStats(stats, hs);
      std::size_t off2 = 0;
      while (off2 < bytes.size()) {
        if (bytes.size() - off2 < header) {
          throw mpisim::Error(
              "jsort::exchange: malformed hierarchical exchange blob");
        }
        std::int64_t in_msg = 0;
        for (std::size_t j = 0; j < st->k; ++j) {
          std::int64_t n = 0;
          std::memcpy(&n, bytes.data() + off2 + j * sizeof(std::int64_t),
                      sizeof n);
          if (n < 0 || static_cast<std::uint64_t>(n) >
                           (bytes.size() - off2 - header) / sizeof(double)) {
            throw mpisim::Error(
                "jsort::exchange: malformed hierarchical exchange blob");
          }
          in_msg += n;
        }
        const std::size_t len =
            header + static_cast<std::size_t>(in_msg) * sizeof(double);
        if (len > bytes.size() - off2) {
          throw mpisim::Error(
              "jsort::exchange: malformed hierarchical exchange blob");
        }
        st->UnpackMessage(bytes.data() + off2, len);
        off2 += len;
      }
      for (std::size_t j = 0; j < st->k; ++j) {
        if (st->remaining[j] != 0) {
          throw mpisim::Error(
              "jsort::exchange: hierarchical exchange delivered a "
              "different element count than the layout overlap");
        }
      }
      st->done = true;
      return [] { return true; };
    }
    if (st->sparse) {
      std::vector<SparseBlock> blocks;
      blocks.reserve(static_cast<std::size_t>(nonempty));
      for (int d = 0; d < st->p; ++d) {
        const auto& msg = msgs[static_cast<std::size_t>(d)];
        if (msg.empty()) continue;
        blocks.push_back(SparseBlock{d, msg.data(),
                                     static_cast<int>(msg.size())});
      }
      // The collective copies the blocks out eagerly, so `msgs` may die
      // with this scope.
      st->pending = st->tr->IsparseAlltoallv(blocks, Datatype::kByte,
                                             &st->deliveries, tag,
                                             segment_bytes);
    } else {
      for (int d = 0; d < st->p; ++d) {
        const auto& msg = msgs[static_cast<std::size_t>(d)];
        if (msg.empty()) continue;
        st->tr->Send(msg.data(), static_cast<int>(msg.size()),
                     Datatype::kByte, d, tag);
      }
    }
    return [st] { return st->Step(); };
  }

  // Dense path: flatten the payload grouped by destination, then run the
  // counts round followed by the payload Alltoallv.
  st->payload.resize(static_cast<std::size_t>(off));
  {
    std::vector<std::int64_t> cursor(st->sdispls.begin(), st->sdispls.end());
    for (std::size_t j = 0; j < st->k; ++j) {
      const Segment& seg = st->segments[j];
      if (seg.count == 0) continue;
      std::int64_t read = 0;
      for (const Chunk& c :
           AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
        if (c.target != st->me) {
          std::memcpy(st->payload.data() +
                          cursor[static_cast<std::size_t>(c.target)],
                      seg.data + read,
                      static_cast<std::size_t>(c.count) * sizeof(double));
          cursor[static_cast<std::size_t>(c.target)] += c.count;
        }
        read += c.count;
      }
    }
  }
  st->StartDenseCountsRound();
  return [st] { return st->Step(); };
}

}  // namespace exchange
}  // namespace jsort
