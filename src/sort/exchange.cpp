#include "sort/exchange.hpp"

#include <cstring>
#include <thread>

namespace jsort {
namespace exchange {
namespace {

void WaitPoll(const Poll& p) {
  while (!p()) {
    if (mpisim::Ctx().runtime->Aborted()) throw mpisim::AbortedError();
    std::this_thread::yield();
  }
}

/// Globally consistent kAuto resolution. The decision must be identical on
/// every rank of the group (receivers behave differently per mode), so it
/// may only depend on quantities all ranks share: the group size and the
/// segment count. An interval redistribution sends each segment to at most
/// a handful of contiguous destinations (greedy chunks of a run no longer
/// than the uniform quota span <= 4 ranks), so with k segments a rank
/// reaches at most ~4k peers; coalescing wins once that is well under the
/// p-1 rounds of the dense path.
Mode Resolve(Mode mode, int p, std::size_t k) {
  if (mode != Mode::kAuto) return mode;
  const std::int64_t max_targets = 4 * static_cast<std::int64_t>(k);
  return 2 * max_targets < p - 1 ? Mode::kCoalesced : Mode::kAlltoallv;
}

/// Shared state of one in-flight segment exchange; the returned Poll holds
/// it alive.
struct SegmentState {
  std::shared_ptr<Transport> tr;
  int p = 0;
  int me = 0;
  std::size_t k = 0;
  int tag = 0;
  std::vector<Segment> segments;
  std::vector<std::int64_t> remaining;  // per segment, elements still owed

  // Send side (both modes).
  std::vector<std::int64_t> counts_matrix;  // [dest * k + seg]
  std::vector<double> payload;              // grouped by dest, seg order
  std::vector<int> sendcounts, sdispls;     // per dest, elements

  // Dense-path state.
  int phase = 0;
  Poll pending;
  std::vector<std::int64_t> incoming_matrix;  // [src * k + seg]
  std::vector<int> recvcounts, rdispls;
  std::vector<double> staging;

  bool coalesced = false;
  bool done = false;

  bool Step();
  void StartDenseCountsRound();
  void FinishDense();
  bool DrainCoalesced();
};

bool SegmentState::Step() {
  if (done) return true;
  if (coalesced) {
    if (!DrainCoalesced()) return false;
    done = true;
    return true;
  }
  if (!pending()) return false;
  if (phase == 0) {
    // Counts known: size the staging buffer and start the payload round.
    recvcounts.assign(static_cast<std::size_t>(p), 0);
    rdispls.assign(static_cast<std::size_t>(p), 0);
    std::int64_t total = 0;
    for (int s = 0; s < p; ++s) {
      std::int64_t from_s = 0;
      for (std::size_t j = 0; j < k; ++j) {
        from_s += incoming_matrix[static_cast<std::size_t>(s) * k + j];
      }
      recvcounts[static_cast<std::size_t>(s)] = static_cast<int>(from_s);
      rdispls[static_cast<std::size_t>(s)] = static_cast<int>(total);
      total += from_s;
    }
    staging.resize(static_cast<std::size_t>(total));
    pending = tr->Ialltoallv(payload.data(), sendcounts, sdispls,
                             Datatype::kFloat64, staging.data(), recvcounts,
                             rdispls, tag);
    phase = 1;
    if (!pending()) return false;
  }
  FinishDense();
  done = true;
  return true;
}

void SegmentState::StartDenseCountsRound() {
  // k int64 entries per peer, uniform (the self block is a local copy of
  // zeros). The transport copies these small arrays at call time.
  incoming_matrix.assign(static_cast<std::size_t>(p) * k, 0);
  std::vector<int> ccounts(static_cast<std::size_t>(p),
                           static_cast<int>(k));
  std::vector<int> cdispls(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    cdispls[static_cast<std::size_t>(i)] = i * static_cast<int>(k);
  }
  pending = tr->Ialltoallv(counts_matrix.data(), ccounts, cdispls,
                           Datatype::kInt64, incoming_matrix.data(), ccounts,
                           cdispls, tag);
}

void SegmentState::FinishDense() {
  // Split the per-source staging blocks into the per-segment sinks.
  for (int s = 0; s < p; ++s) {
    const double* cursor =
        staging.data() + static_cast<std::size_t>(
                             rdispls[static_cast<std::size_t>(s)]);
    for (std::size_t j = 0; j < k; ++j) {
      const std::int64_t n =
          incoming_matrix[static_cast<std::size_t>(s) * k + j];
      if (n != 0) {
        segments[j].sink->insert(segments[j].sink->end(), cursor, cursor + n);
        remaining[j] -= n;
      }
      cursor += n;
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (remaining[j] != 0) {
      throw mpisim::Error(
          "jsort::exchange: received element count disagrees with the "
          "layout overlap");
    }
  }
}

bool SegmentState::DrainCoalesced() {
  bool all = true;
  for (std::size_t j = 0; j < k; ++j) all &= remaining[j] == 0;
  while (!all) {
    Status st;
    if (!tr->IprobeAny(tag, &st)) return false;
    std::vector<std::byte> msg(st.bytes);
    tr->Recv(msg.data(), static_cast<int>(st.bytes), Datatype::kByte,
             st.source, tag);
    std::size_t off = k * sizeof(std::int64_t);
    all = true;
    for (std::size_t j = 0; j < k; ++j) {
      std::int64_t n = 0;
      std::memcpy(&n, msg.data() + j * sizeof(std::int64_t), sizeof n);
      if (n != 0) {
        std::vector<double>& sink = *segments[j].sink;
        const std::size_t old = sink.size();
        sink.resize(old + static_cast<std::size_t>(n));
        std::memcpy(sink.data() + old, msg.data() + off,
                    static_cast<std::size_t>(n) * sizeof(double));
        off += static_cast<std::size_t>(n) * sizeof(double);
        remaining[j] -= n;
      }
      if (remaining[j] < 0) {
        throw mpisim::Error(
            "jsort::exchange: received more elements than the layout "
            "overlap");
      }
      all &= remaining[j] == 0;
    }
  }
  return true;
}

}  // namespace

std::int64_t ExscanCount(Transport& tr, std::int64_t mine, int tag) {
  std::int64_t incl = 0;
  Poll s = tr.Iscan(&mine, &incl, 1, Datatype::kInt64, ReduceOp::kSum, tag);
  WaitPoll(s);
  return incl - mine;
}

SendPlan PlanFromInterval(const CapacityLayout& layout,
                          std::int64_t slot_begin, std::int64_t n, int p) {
  SendPlan plan;
  plan.counts.assign(static_cast<std::size_t>(p), 0);
  plan.displs.assign(static_cast<std::size_t>(p), 0);
  if (n > 0) {
    for (const Chunk& c : AssignChunks(layout, slot_begin, slot_begin + n)) {
      plan.counts[static_cast<std::size_t>(c.target)] +=
          static_cast<int>(c.count);
    }
  }
  int off = 0;
  for (int i = 0; i < p; ++i) {
    plan.displs[static_cast<std::size_t>(i)] = off;
    off += plan.counts[static_cast<std::size_t>(i)];
  }
  return plan;
}

std::vector<double> ExchangeBuckets(
    Transport& tr, const std::vector<std::vector<double>>& buckets, int tag,
    ExchangeStats* stats) {
  const int p = tr.Size();
  if (static_cast<int>(buckets.size()) != p) {
    throw mpisim::UsageError(
        "jsort::exchange::ExchangeBuckets: one bucket per rank required");
  }
  const int me = tr.Rank();

  // Flatten the non-self buckets in rank order; the self bucket skips the
  // exchange entirely and is copied straight into its output slot below.
  std::vector<int> sendcounts(static_cast<std::size_t>(p)),
      sdispls(static_cast<std::size_t>(p));
  std::vector<std::int64_t> my_counts(static_cast<std::size_t>(p));
  std::int64_t total_out = 0;
  for (int i = 0; i < p; ++i) {
    const auto n = static_cast<std::int64_t>(
        buckets[static_cast<std::size_t>(i)].size());
    my_counts[static_cast<std::size_t>(i)] = n;
    sendcounts[static_cast<std::size_t>(i)] = i == me ? 0 : static_cast<int>(n);
    sdispls[static_cast<std::size_t>(i)] = static_cast<int>(total_out);
    total_out += sendcounts[static_cast<std::size_t>(i)];
  }
  std::vector<double> sendbuf(static_cast<std::size_t>(total_out));
  for (int i = 0; i < p; ++i) {
    if (i == me) continue;
    const auto& b = buckets[static_cast<std::size_t>(i)];
    std::copy(b.begin(), b.end(),
              sendbuf.begin() + sdispls[static_cast<std::size_t>(i)]);
  }

  // Counts round: one int64 per peer.
  std::vector<std::int64_t> in_counts(static_cast<std::size_t>(p), 0);
  std::vector<int> ones(static_cast<std::size_t>(p), 1),
      iota(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) iota[static_cast<std::size_t>(i)] = i;
  WaitPoll(tr.Ialltoallv(my_counts.data(), ones, iota, Datatype::kInt64,
                         in_counts.data(), ones, iota, tag));

  // Payload round. The self block is a zero-count gap in the exchange
  // (matching sendcounts[me] == 0 above); its slot in `out` is filled
  // directly from the bucket.
  std::vector<int> recvcounts(static_cast<std::size_t>(p)),
      rdispls(static_cast<std::size_t>(p));
  std::int64_t total_in = 0;
  for (int i = 0; i < p; ++i) {
    recvcounts[static_cast<std::size_t>(i)] =
        i == me ? 0 : static_cast<int>(in_counts[static_cast<std::size_t>(i)]);
    rdispls[static_cast<std::size_t>(i)] = static_cast<int>(total_in);
    total_in += in_counts[static_cast<std::size_t>(i)];
  }
  std::vector<double> out(static_cast<std::size_t>(total_in));
  const auto& self = buckets[static_cast<std::size_t>(me)];
  std::copy(self.begin(), self.end(),
            out.begin() + rdispls[static_cast<std::size_t>(me)]);
  WaitPoll(tr.Ialltoallv(sendbuf.data(), sendcounts, sdispls,
                         Datatype::kFloat64, out.data(), recvcounts, rdispls,
                         tag));
  if (stats != nullptr) {
    stats->messages_sent += p - 1;
    stats->elements_sent += total_out;  // self excluded from the flatten
  }
  return out;
}

Poll StartSegmentExchange(const std::shared_ptr<Transport>& tr,
                          const CapacityLayout& layout,
                          std::vector<Segment> segments, int tag, Mode mode,
                          ExchangeStats* stats) {
  if (tr == nullptr) {
    throw mpisim::UsageError("jsort::exchange: null transport");
  }
  auto st = std::make_shared<SegmentState>();
  st->tr = tr;
  st->p = tr->Size();
  st->me = tr->Rank();
  st->k = segments.size();
  st->tag = tag;
  st->segments = std::move(segments);
  st->remaining.reserve(st->k);
  st->counts_matrix.assign(static_cast<std::size_t>(st->p) * st->k, 0);

  // Interval computation -> per-destination chunks. Self chunks bypass the
  // transport and land in their sinks right away.
  for (std::size_t j = 0; j < st->k; ++j) {
    Segment& seg = st->segments[j];
    if (seg.sink == nullptr) {
      throw mpisim::UsageError("jsort::exchange: segment without sink");
    }
    st->remaining.push_back(seg.expect);
    if (seg.count == 0) continue;
    std::int64_t cursor = 0;
    for (const Chunk& c :
         AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
      if (c.target == st->me) {
        seg.sink->insert(seg.sink->end(), seg.data + cursor,
                         seg.data + cursor + c.count);
        st->remaining[j] -= c.count;
      } else {
        st->counts_matrix[static_cast<std::size_t>(c.target) * st->k + j] +=
            c.count;
      }
      cursor += c.count;
    }
  }

  st->coalesced = Resolve(mode, st->p, st->k) == Mode::kCoalesced;

  // Per-destination totals (and traffic accounting) are mode-independent.
  std::int64_t nonempty = 0, elements = 0;
  st->sendcounts.assign(static_cast<std::size_t>(st->p), 0);
  st->sdispls.assign(static_cast<std::size_t>(st->p), 0);
  std::int64_t off = 0;
  for (int d = 0; d < st->p; ++d) {
    std::int64_t to_d = 0;
    for (std::size_t j = 0; j < st->k; ++j) {
      to_d += st->counts_matrix[static_cast<std::size_t>(d) * st->k + j];
    }
    st->sendcounts[static_cast<std::size_t>(d)] = static_cast<int>(to_d);
    st->sdispls[static_cast<std::size_t>(d)] = static_cast<int>(off);
    off += to_d;
    if (to_d != 0) {
      ++nonempty;
      elements += to_d;
    }
  }
  if (stats != nullptr) {
    stats->messages_sent +=
        st->coalesced ? nonempty : static_cast<std::int64_t>(st->p - 1);
    stats->elements_sent += elements;
  }

  if (st->coalesced) {
    // One self-describing message per non-empty destination:
    // [int64 seg_counts[k]][segment payloads in order]. Built in a single
    // chunk walk per segment with per-destination write cursors (segments
    // are visited in order, so each message's payload is segment-ordered).
    // Sends are eager; the Poll only drains this rank's own expectations.
    const std::size_t header = st->k * sizeof(std::int64_t);
    std::vector<std::vector<std::byte>> msgs(
        static_cast<std::size_t>(st->p));
    std::vector<std::size_t> wcursor(static_cast<std::size_t>(st->p),
                                     header);
    for (int d = 0; d < st->p; ++d) {
      if (st->sendcounts[static_cast<std::size_t>(d)] == 0) continue;
      msgs[static_cast<std::size_t>(d)].resize(
          header + static_cast<std::size_t>(
                       st->sendcounts[static_cast<std::size_t>(d)]) *
                       sizeof(double));
      std::memcpy(msgs[static_cast<std::size_t>(d)].data(),
                  st->counts_matrix.data() +
                      static_cast<std::size_t>(d) * st->k,
                  header);
    }
    for (std::size_t j = 0; j < st->k; ++j) {
      const Segment& seg = st->segments[j];
      if (seg.count == 0) continue;
      std::int64_t read = 0;
      for (const Chunk& c :
           AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
        if (c.target != st->me) {
          const auto di = static_cast<std::size_t>(c.target);
          std::memcpy(msgs[di].data() + wcursor[di], seg.data + read,
                      static_cast<std::size_t>(c.count) * sizeof(double));
          wcursor[di] += static_cast<std::size_t>(c.count) * sizeof(double);
        }
        read += c.count;
      }
    }
    for (int d = 0; d < st->p; ++d) {
      const auto& msg = msgs[static_cast<std::size_t>(d)];
      if (msg.empty()) continue;
      st->tr->Send(msg.data(), static_cast<int>(msg.size()), Datatype::kByte,
                   d, tag);
    }
    return [st] { return st->Step(); };
  }

  // Dense path: flatten the payload grouped by destination, then run the
  // counts round followed by the payload Alltoallv.
  st->payload.resize(static_cast<std::size_t>(off));
  {
    std::vector<std::int64_t> cursor(st->sdispls.begin(), st->sdispls.end());
    for (std::size_t j = 0; j < st->k; ++j) {
      const Segment& seg = st->segments[j];
      if (seg.count == 0) continue;
      std::int64_t read = 0;
      for (const Chunk& c :
           AssignChunks(layout, seg.slot_begin, seg.slot_begin + seg.count)) {
        if (c.target != st->me) {
          std::memcpy(st->payload.data() +
                          cursor[static_cast<std::size_t>(c.target)],
                      seg.data + read,
                      static_cast<std::size_t>(c.count) * sizeof(double));
          cursor[static_cast<std::size_t>(c.target)] += c.count;
        }
        read += c.count;
      }
    }
  }
  st->StartDenseCountsRound();
  return [st] { return st->Step(); };
}

}  // namespace exchange
}  // namespace jsort
