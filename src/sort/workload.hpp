// Input generators for the sorting experiments: the uniform 64-bit
// floating-point inputs of Section VIII plus standard adversarial
// distributions used in the extended tests and ablations.
#pragma once

#include <cstdint>
#include <vector>

namespace jsort {

enum class InputKind {
  kUniform,        // U(0,1) doubles -- the paper's workload
  kGaussian,       // N(0,1)
  kSortedAsc,      // already globally sorted
  kSortedDesc,     // reverse sorted
  kAllEqual,       // a single duplicated value
  kFewDistinct,    // 8 distinct values, heavy duplicates
  kZipf,           // skewed duplicates
  kBucketKiller,   // staircase: rank r holds values around r (stresses
                   // pivot locality)
};

const char* InputKindName(InputKind kind);

/// Generates `count` elements for `rank` of `p` ranks. Deterministic in
/// (kind, rank, p, seed). The concatenation over ranks is the global
/// input.
std::vector<double> GenerateInput(InputKind kind, int rank, int p,
                                  std::int64_t count, std::uint64_t seed);

}  // namespace jsort
