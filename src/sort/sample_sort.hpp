// Single-level sample sort (Blelloch et al. [15]) -- the "move the data
// once" end of the design space discussed in Section IV: p-1 splitters are
// chosen from a sample, every process partitions its data into p buckets
// and sends bucket i to process i in one all-to-all, then sorts locally.
// Efficient only for n = Omega(p^2 / log p); the p-1 message startups per
// process are the cost JQuick's O(log p) levels avoid for small n/p.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/transport.hpp"

namespace jsort {

struct SampleSortConfig {
  /// Oversampling factor: each rank contributes `oversample` samples per
  /// splitter, improving balance.
  int oversample = 8;
  /// Large-message segment limit of the bucket exchange (bytes; 0 =
  /// unsegmented): past it, each per-peer payload block is pipelined in
  /// segments of at most this many bytes. Defaults to the measured
  /// crossover (see exchange::kDefaultSegmentBytes).
  std::int64_t segment_bytes = exchange::kDefaultSegmentBytes;
  /// Delivery path of the bucket exchange. kAuto keeps the dense
  /// Alltoallv on a flat cost model and switches to the node-aware
  /// hierarchical engine exactly when the cost model is two-level and the
  /// group spans nodes (see exchange.hpp).
  exchange::Mode exchange_mode = exchange::Mode::kAuto;
  std::uint64_t seed = 1;
};

struct SampleSortStats {
  std::int64_t final_elements = 0;
  std::int64_t messages_sent = 0;
  /// Wire-level payload messages after segmentation (== messages_sent
  /// when segment_bytes is 0).
  std::int64_t segments_sent = 0;
};

/// Sorts the global data over the transport's group. Output slices are
/// approximately balanced (within the sampling guarantee), not perfectly.
std::vector<double> SampleSort(const std::shared_ptr<Transport>& world,
                               std::vector<double> local,
                               const SampleSortConfig& cfg = {},
                               SampleSortStats* stats = nullptr);

}  // namespace jsort
