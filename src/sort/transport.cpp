#include "sort/transport.hpp"

#include <array>
#include <utility>
#include <vector>

namespace jsort {
namespace {

/// Adapts an rbc::Request into a Poll.
Poll WrapRbc(rbc::Request req) {
  return [req = std::move(req)]() mutable { return req.Poll(nullptr); };
}

/// Adapts an mpisim::Request into a Poll.
Poll WrapMpi(mpisim::Request req) {
  return [req = std::move(req)]() mutable { return req.Test(nullptr); };
}

/// RBC collective tag scheme: the caller's logical tag (e.g. recursion
/// level) and an operation code map to disjoint reserved tags, so two
/// simultaneous collectives never share a tag unless the caller reuses the
/// logical tag for the same operation.
constexpr int kRbcOpBcast = 0;
constexpr int kRbcOpScan = 1;
constexpr int kRbcOpReduce = 2;
constexpr int kRbcOpGather = 3;
constexpr int kRbcOpAlltoallv = 4;
int RbcCollTag(int tag, int op) {
  return rbc::kReservedTagBase + (1 << 12) + tag * 8 + op;
}

class RbcTransport final : public Transport {
 public:
  explicit RbcTransport(rbc::Comm comm) : comm_(std::move(comm)) {
    if (comm_.Rank() < 0) {
      throw mpisim::UsageError("RbcTransport: caller not in range");
    }
  }

  int Rank() const override { return comm_.Rank(); }
  int Size() const override { return comm_.Size(); }

  int WorldRankOf(int r) const override {
    return comm_.Mpi().WorldRank(comm_.ToMpi(r));
  }

  Poll Ibcast(void* buf, int count, Datatype dt, int root,
              int tag) override {
    rbc::Request req;
    rbc::Ibcast(buf, count, dt, root, comm_, &req,
                RbcCollTag(tag, kRbcOpBcast));
    return WrapRbc(std::move(req));
  }

  Poll Iscan(const void* send, void* recv, int count, Datatype dt,
             ReduceOp op, int tag) override {
    rbc::Request req;
    rbc::Iscan(send, recv, count, dt, op, comm_, &req,
               RbcCollTag(tag, kRbcOpScan));
    return WrapRbc(std::move(req));
  }

  Poll Ireduce(const void* send, void* recv, int count, Datatype dt,
               ReduceOp op, int root, int tag) override {
    rbc::Request req;
    rbc::Ireduce(send, recv, count, dt, op, root, comm_, &req,
                 RbcCollTag(tag, kRbcOpReduce));
    return WrapRbc(std::move(req));
  }

  Poll Igather(const void* send, int count, Datatype dt, void* recv,
               int root, int tag) override {
    rbc::Request req;
    rbc::Igather(send, count, dt, recv, root, comm_, &req,
                 RbcCollTag(tag, kRbcOpGather));
    return WrapRbc(std::move(req));
  }

  Poll Ialltoallv(const void* send, std::span<const int> sendcounts,
                  std::span<const int> sdispls, Datatype dt, void* recv,
                  std::span<const int> recvcounts,
                  std::span<const int> rdispls, int tag,
                  std::int64_t segment_bytes) override {
    rbc::Request req;
    rbc::Ialltoallv(send, sendcounts, sdispls, dt, recv, recvcounts, rdispls,
                    comm_, &req, RbcCollTag(tag, kRbcOpAlltoallv),
                    segment_bytes);
    return WrapRbc(std::move(req));
  }

  Poll IsparseAlltoallv(std::span<const SparseBlock> sends, Datatype dt,
                        std::vector<SparseDelivery>* received, int tag,
                        std::int64_t segment_bytes) override {
    rbc::Request req;
    rbc::IsparseAlltoallv(sends, dt, received, comm_, &req, tag,
                          segment_bytes);
    return WrapRbc(std::move(req));
  }

  void Send(const void* buf, int count, Datatype dt, int dest,
            int tag) override {
    rbc::Send(buf, count, dt, dest, tag, comm_);
  }

  bool IprobeAny(int tag, Status* st) override {
    int flag = 0;
    rbc::Iprobe(rbc::kAnySource, tag, comm_, &flag, st);
    return flag != 0;
  }

  void Recv(void* buf, int count, Datatype dt, int src, int tag,
            Status* st) override {
    rbc::Recv(buf, count, dt, src, tag, comm_, st);
  }

  std::shared_ptr<Transport> Split(int first, int last) override {
    rbc::Comm sub;
    rbc::Split_RBC_Comm(comm_, first, last, &sub);
    return std::make_shared<RbcTransport>(std::move(sub));
  }

  const char* Name() const override { return "RBC"; }

 private:
  rbc::Comm comm_;
};

/// Common base of the two MPI-communicator-backed transports; only the
/// split strategy differs.
class MpiTransportBase : public Transport {
 public:
  explicit MpiTransportBase(mpisim::Comm comm) : comm_(std::move(comm)) {
    if (comm_.IsNull()) {
      throw mpisim::UsageError("MpiTransport: null communicator");
    }
  }

  int Rank() const override { return comm_.Rank(); }
  int Size() const override { return comm_.Size(); }

  int WorldRankOf(int r) const override { return comm_.WorldRank(r); }

  // The MPI transports have private contexts per group, so the tag
  // parameter is unnecessary for collectives (the NBC tag counter of the
  // communicator handles ordering) -- exactly MPI semantics.
  Poll Ibcast(void* buf, int count, Datatype dt, int root,
              int /*tag*/) override {
    return WrapMpi(mpisim::Ibcast(buf, count, dt, root, comm_));
  }

  Poll Iscan(const void* send, void* recv, int count, Datatype dt,
             ReduceOp op, int /*tag*/) override {
    return WrapMpi(mpisim::Iscan(send, recv, count, dt, op, comm_));
  }

  Poll Ireduce(const void* send, void* recv, int count, Datatype dt,
               ReduceOp op, int root, int /*tag*/) override {
    return WrapMpi(mpisim::Ireduce(send, recv, count, dt, op, root, comm_));
  }

  Poll Igather(const void* send, int count, Datatype dt, void* recv,
               int root, int /*tag*/) override {
    return WrapMpi(mpisim::Igather(send, count, dt, recv, root, comm_));
  }

  Poll Ialltoallv(const void* send, std::span<const int> sendcounts,
                  std::span<const int> sdispls, Datatype dt, void* recv,
                  std::span<const int> recvcounts,
                  std::span<const int> rdispls, int /*tag*/,
                  std::int64_t segment_bytes) override {
    return WrapMpi(mpisim::Ialltoallv(send, sendcounts, sdispls, dt, recv,
                                      recvcounts, rdispls, comm_,
                                      segment_bytes));
  }

  Poll IsparseAlltoallv(std::span<const SparseBlock> sends, Datatype dt,
                        std::vector<SparseDelivery>* received, int /*tag*/,
                        std::int64_t segment_bytes) override {
    return WrapMpi(
        mpisim::IsparseAlltoallv(sends, dt, received, comm_, segment_bytes));
  }

  void Send(const void* buf, int count, Datatype dt, int dest,
            int tag) override {
    mpisim::Send(buf, count, dt, dest, tag, comm_);
  }

  bool IprobeAny(int tag, Status* st) override {
    // Private context: every matching message belongs to this group.
    return mpisim::Iprobe(mpisim::kAnySource, tag, comm_, st);
  }

  void Recv(void* buf, int count, Datatype dt, int src, int tag,
            Status* st) override {
    mpisim::Recv(buf, count, dt, src, tag, comm_, st);
  }

 protected:
  mpisim::Comm comm_;
};

class MpiTransport final : public MpiTransportBase {
 public:
  using MpiTransportBase::MpiTransportBase;

  std::shared_ptr<Transport> Split(int first, int last) override {
    // Blocking collective over the subgroup: context-mask agreement plus
    // explicit O(group) rank-array construction (Section III).
    const std::array<mpisim::RankRange, 1> range{
        mpisim::RankRange{first, last, 1}};
    mpisim::Group group = mpisim::GroupRangeIncl(comm_, range);
    mpisim::Comm sub = mpisim::CommCreateGroup(comm_, group, /*tag=*/0);
    return std::make_shared<MpiTransport>(std::move(sub));
  }

  const char* Name() const override { return "MPI"; }
};

class IcommTransport final : public MpiTransportBase {
 public:
  using MpiTransportBase::MpiTransportBase;

  std::shared_ptr<Transport> Split(int first, int last) override {
    // Section-VI nonblocking creation; the contiguous-range fast path
    // completes locally in O(1), so the Wait returns immediately.
    const std::array<mpisim::RankRange, 1> range{
        mpisim::RankRange{first, last, 1}};
    mpisim::Group group = mpisim::GroupRangeIncl(comm_, range);
    mpisim::Comm sub;
    mpisim::Request req =
        mpisim::IcommCreateGroup(comm_, group, /*tag=*/0, &sub);
    mpisim::Wait(req);
    return std::make_shared<IcommTransport>(std::move(sub));
  }

  const char* Name() const override { return "ICOMM"; }
};

}  // namespace

std::shared_ptr<Transport> MakeRbcTransport(rbc::Comm comm) {
  return std::make_shared<RbcTransport>(std::move(comm));
}

std::shared_ptr<Transport> MakeMpiTransport(mpisim::Comm comm) {
  return std::make_shared<MpiTransport>(std::move(comm));
}

std::shared_ptr<Transport> MakeIcommTransport(mpisim::Comm comm) {
  return std::make_shared<IcommTransport>(std::move(comm));
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kRbc: return "rbc";
    case Backend::kMpi: return "mpi";
    case Backend::kIcomm: return "icomm";
  }
  return "?";
}

bool ParseBackend(std::string_view name, Backend* out) {
  for (Backend b : {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    if (name == BackendName(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

std::shared_ptr<Transport> MakeTransport(Backend backend,
                                         mpisim::Comm& world) {
  switch (backend) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return MakeRbcTransport(std::move(rw));
    }
    case Backend::kMpi:
      return MakeMpiTransport(world);
    case Backend::kIcomm:
      return MakeIcommTransport(world);
  }
  throw mpisim::UsageError("MakeTransport: unknown backend");
}

}  // namespace jsort
