// Hypercube quicksort (Wagar [6]) -- the classic baseline JQuick is
// measured against in Section IV: restricted to p = 2^k processes and
// *not* load balanced (per-process data volumes drift apart as the pivots
// miss the medians).
//
// Each level: the group agrees on a pivot, every process splits its data,
// partners across the current hypercube dimension exchange the halves
// (small halves travel to the lower subcube), and the algorithm recurses
// on both subcubes. Implemented over RBC communicators, whose O(1) splits
// make the recursion cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sort/sampling.hpp"
#include "sort/transport.hpp"

namespace jsort {

struct HypercubeConfig {
  PivotPolicy pivot = PivotPolicy::kMedianOfSamples;
  SampleParams samples{};
  std::uint64_t seed = 1;
};

struct HypercubeStats {
  int levels = 0;
  /// Final local element count; the spread across ranks is the imbalance
  /// JQuick eliminates.
  std::int64_t final_elements = 0;
};

/// Sorts the global data over the transport's group; Size() must be a
/// power of two. Returns this rank's slice of the sorted sequence -- the
/// slice sizes are generally *unbalanced* (that is the point of the
/// comparison).
std::vector<double> HypercubeQuicksort(
    const std::shared_ptr<Transport>& world, std::vector<double> local,
    const HypercubeConfig& cfg = {}, HypercubeStats* stats = nullptr);

}  // namespace jsort
